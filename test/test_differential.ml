(* Golden differential: the breakpoint (switch-level) simulator against
   the transistor-level Spice.Engine reference, on an inverter chain and
   the 28-transistor mirror-adder cell, across three sleep W/L points.

   The switch-level tool is a first-order model, so its absolute delays
   run fast — measured bp/spice ratios sit between 0.41 and 0.70 on
   these fixtures.  What the paper claims (and fig 10/13 show) is that
   the tool tracks the transistor-level *curve*: the ratio is nearly
   constant across sleep sizes and the degradation trend matches.  The
   tolerances below pin exactly that, with headroom:

   - absolute MTCMOS delay ratio bp/spice within [0.35, 0.80];
   - the ratio drifts by less than 25 % (relative) across the three
     W/L points of one circuit (curve-shape tracking);
   - relative degradation: tool within [0.8x, 2.5x] of transistor level
     (measured worst case 1.82x, at the smallest sleep device);
   - both engines agree the delay and degradation fall as W/L grows. *)

let tech = Fixtures.tech

let wls = [ 4.0; 10.0; 25.0 ]

let fixtures () =
  [ ( "chain6",
      Fixtures.chain6 (),
      Fixtures.bit_vec );
    ( "mirror-cell",
      Fixtures.mirror_cell (),
      (* 0+0+0 -> 1+1+0: fires both the carry and the sum stage *)
      ([ (1, 0); (1, 0); (1, 0) ], [ (1, 1); (1, 1); (1, 0) ]) ) ]

let measurements c vec =
  List.map
    (fun wl ->
      let bp =
        Mtcmos.Sizing.delay_at ~ctx:Eval.Ctx.(default |> with_engine Eval.Breakpoint) c
          ~vectors:[ vec ] ~wl
      in
      let sp =
        Mtcmos.Sizing.delay_at ~ctx:Eval.Ctx.(default |> with_engine Eval.Spice_level) c
          ~vectors:[ vec ] ~wl
      in
      (wl, bp, sp))
    wls

let test_absolute_ratio_band () =
  List.iter
    (fun (name, c, vec) ->
      List.iter
        (fun (wl, (bp : Mtcmos.Sizing.measurement),
              (sp : Mtcmos.Sizing.measurement)) ->
          let ratio =
            bp.Mtcmos.Sizing.mtcmos_delay /. sp.Mtcmos.Sizing.mtcmos_delay
          in
          if not (ratio >= 0.35 && ratio <= 0.80) then
            Alcotest.failf "%s wl=%g: bp/spice delay ratio %.3f outside \
                            [0.35, 0.80]" name wl ratio)
        (measurements c vec))
    (fixtures ())

let test_ratio_tracks_curve () =
  (* fig 10's claim, quantified: the bp/spice ratio moves by < 25 %
     (relative) across the sleep sizes of one circuit *)
  List.iter
    (fun (name, c, vec) ->
      let ratios =
        List.map
          (fun (_, (bp : Mtcmos.Sizing.measurement),
                (sp : Mtcmos.Sizing.measurement)) ->
            bp.Mtcmos.Sizing.mtcmos_delay /. sp.Mtcmos.Sizing.mtcmos_delay)
          (measurements c vec)
      in
      let lo = List.fold_left Float.min infinity ratios in
      let hi = List.fold_left Float.max neg_infinity ratios in
      let drift = (hi -. lo) /. lo in
      if drift >= 0.25 then
        Alcotest.failf "%s: bp/spice ratio drifts %.1f%% across W/L %s \
                        (tolerance 25%%)" name (100.0 *. drift)
          (String.concat "/" (List.map (Printf.sprintf "%g") wls)))
    (fixtures ())

let test_degradation_agreement () =
  List.iter
    (fun (name, c, vec) ->
      List.iter
        (fun (wl, (bp : Mtcmos.Sizing.measurement),
              (sp : Mtcmos.Sizing.measurement)) ->
          let db = bp.Mtcmos.Sizing.degradation
          and ds = sp.Mtcmos.Sizing.degradation in
          if not (ds > 0.0 && db >= 0.8 *. ds && db <= 2.5 *. ds) then
            Alcotest.failf
              "%s wl=%g: tool degradation %.3f vs transistor-level %.3f \
               outside [0.8x, 2.5x]" name wl db ds)
        (measurements c vec))
    (fixtures ())

let test_monotone_in_wl () =
  List.iter
    (fun (name, c, vec) ->
      let ms = measurements c vec in
      let rec check = function
        | (wl1, (bp1 : Mtcmos.Sizing.measurement),
           (sp1 : Mtcmos.Sizing.measurement))
          :: ((wl2, bp2, sp2) :: _ as rest) ->
          if bp2.Mtcmos.Sizing.mtcmos_delay >= bp1.Mtcmos.Sizing.mtcmos_delay
          then
            Alcotest.failf "%s: tool delay rises from wl=%g to wl=%g" name
              wl1 wl2;
          if sp2.Mtcmos.Sizing.mtcmos_delay >= sp1.Mtcmos.Sizing.mtcmos_delay
          then
            Alcotest.failf "%s: spice delay rises from wl=%g to wl=%g" name
              wl1 wl2;
          if sp2.Mtcmos.Sizing.degradation >= sp1.Mtcmos.Sizing.degradation
          then
            Alcotest.failf "%s: spice degradation rises from wl=%g to wl=%g"
              name wl1 wl2;
          check rest
        | [ _ ] | [] -> ()
      in
      check ms)
    (fixtures ())

let suite =
  [ Alcotest.test_case "absolute delay ratio in [0.35, 0.80]" `Slow
      test_absolute_ratio_band;
    Alcotest.test_case "ratio tracks the spice curve (< 25% drift)" `Slow
      test_ratio_tracks_curve;
    Alcotest.test_case "degradation within [0.8x, 2.5x]" `Slow
      test_degradation_agreement;
    Alcotest.test_case "delay and degradation fall with W/L" `Slow
      test_monotone_in_wl ]
