(* Shared circuit builders for the test suites.  Every suite used to
   re-declare its own technology card, inverter chains, ripple adders
   and the mirror-adder cell; they are defined once here so a fixture
   tweak (or a new benchmark) lands everywhere at once.

   Nothing here is random or stateful: fixtures are rebuilt on each
   call so a test that mutates nothing can still not alias another
   test's circuit. *)

let tech = Device.Tech.mtcmos_07um
let tech03 = Device.Tech.mtcmos_03um

let chain ?(tech = tech) ?cl n =
  Circuits.Chain.inverter_chain ?cl tech ~length:n

let chain_circuit ?tech ?cl n = (chain ?tech ?cl n).Circuits.Chain.circuit
let chain6 () = chain_circuit 6

let tree ?(tech = tech) ~stages ~fanout () =
  Circuits.Inverter_tree.make tech ~stages ~fanout

let tree_circuit ?tech ~stages ~fanout () =
  (tree ?tech ~stages ~fanout ()).Circuits.Inverter_tree.circuit

let adder ?(tech = tech) bits = Circuits.Ripple_adder.make tech ~bits
let adder_circuit ?tech bits = (adder ?tech bits).Circuits.Ripple_adder.circuit
let adder8 () = adder_circuit 8

let mult ?(tech = tech) bits = Circuits.Csa_multiplier.make tech ~bits
let mult_circuit ?tech bits = (mult ?tech bits).Circuits.Csa_multiplier.circuit

(* --- sized builders for the scale tier --------------------------------
   Parameterized generators for the event-driven-core suites: wide
   Kogge-Stone prefix adders, CSA multiplier arrays (via [mult] above)
   and seeded random-logic clouds.  Deterministic for a given size and
   seed, so differential results are reproducible across runs and
   worker counts. *)

let kogge ?(tech = tech) bits = Circuits.Kogge_stone.make tech ~bits

let kogge_circuit ?tech bits =
  (kogge ?tech bits).Circuits.Kogge_stone.circuit

let random_cloud ?(tech = tech) ?(seed = 7) ?cl ~inputs ~gates () =
  Circuits.Random_logic.make ~seed ?cl tech ~inputs ~gates

let random_circuit ?tech ?seed ?cl ~inputs ~gates () =
  (random_cloud ?tech ?seed ?cl ~inputs ~gates ()).Circuits.Random_logic.circuit

(* Size multiplier for the scale suites: tier-1 stays fast at the
   default 1; CI (or a curious dev) sets MTSIZE_TEST_SCALE=4/10 to run
   the same properties on 10k+-gate instances. *)
let test_scale () =
  match Sys.getenv_opt "MTSIZE_TEST_SCALE" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> 1)
  | None -> 1

let scaled n = n * test_scale ()

(* the 28-transistor mirror-adder cell as a 3-input / 2-output circuit *)
let mirror_cell () =
  let b = Netlist.Circuit.builder tech in
  let a = Netlist.Circuit.add_input ~name:"a" b in
  let bb = Netlist.Circuit.add_input ~name:"b" b in
  let cin = Netlist.Circuit.add_input ~name:"cin" b in
  let o = Circuits.Mirror_adder.add_cell b ~a ~b:bb ~cin in
  Netlist.Circuit.mark_output b o.Circuits.Mirror_adder.sum;
  Netlist.Circuit.mark_output b o.Circuits.Mirror_adder.cout;
  Netlist.Circuit.freeze b

(* single 1-bit input, low -> high *)
let bit_vec = ([ (1, 0) ], [ (1, 1) ])

(* everything low -> everything high for the given input packing *)
let low_high widths =
  ( List.map (fun w -> (w, 0)) widths,
    List.map (fun w -> (w, (1 lsl w) - 1)) widths )

(* Worker-domain count for suites that exercise parallel paths: the CI
   matrix sets MTSIZE_TEST_JOBS to re-run the whole suite at several
   values; everything is bit-identical across them by design. *)
let test_jobs () =
  match Sys.getenv_opt "MTSIZE_TEST_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> 1)
  | None -> 1
