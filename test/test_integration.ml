(* Cross-engine integration tests: the switch-level simulator against
   the transistor-level reference, mirroring the paper's §6 validation. *)

module BP = Mtcmos.Breakpoint_sim
module SR = Mtcmos.Spice_ref
module S = Netlist.Signal

let tech = Fixtures.tech

let sleep wl =
  BP.Sleep_fet (Device.Sleep.make tech.Device.Tech.sleep_nmos ~wl ~vdd:1.2)

let test_chain_cmos_agreement () =
  (* both engines within 40 % on a plain CMOS chain *)
  let ch = Fixtures.chain ~cl:50e-15 3 in
  let c = ch.Circuits.Chain.circuit in
  let bp = BP.simulate c ~before:[| S.L0 |] ~after:[| S.L1 |] in
  let sp = SR.run c ~before:[| S.L0 |] ~after:[| S.L1 |] in
  let d_bp = match BP.critical_delay bp with Some (_, d) -> d | None -> 0.0 in
  let d_sp = match SR.critical_delay sp with Some (_, d) -> d | None -> 0.0 in
  Alcotest.(check bool) "both positive" true (d_bp > 0.0 && d_sp > 0.0);
  let ratio = d_bp /. d_sp in
  Alcotest.(check bool)
    (Printf.sprintf "within 40%% (ratio %.2f)" ratio)
    true
    (ratio > 0.6 && ratio < 1.4)

let test_tree_mtcmos_agreement () =
  let tree = Fixtures.tree ~stages:3 ~fanout:3 () in
  let c = tree.Circuits.Inverter_tree.circuit in
  let cfg_bp = { BP.default_config with BP.sleep = sleep 14.0 } in
  let cfg_sp = { SR.default_config with SR.sleep = sleep 14.0; t_stop = 8e-9 } in
  let bp = BP.simulate ~config:cfg_bp c ~before:[| S.L0 |] ~after:[| S.L1 |] in
  let sp = SR.run ~config:cfg_sp c ~before:[| S.L0 |] ~after:[| S.L1 |] in
  let d_bp = match BP.critical_delay bp with Some (_, d) -> d | None -> 0.0 in
  let d_sp = match SR.critical_delay sp with Some (_, d) -> d | None -> 0.0 in
  let ratio = d_bp /. d_sp in
  Alcotest.(check bool)
    (Printf.sprintf "delay within 40%% (ratio %.2f)" ratio)
    true
    (ratio > 0.6 && ratio < 1.4);
  (* ground bounce magnitude agrees to 35 % (Fig. 11's claim is shape) *)
  let vx_ratio = BP.vx_peak bp /. SR.vx_peak sp in
  Alcotest.(check bool)
    (Printf.sprintf "vx within 35%% (ratio %.2f)" vx_ratio)
    true
    (vx_ratio > 0.65 && vx_ratio < 1.35)

let test_tree_wl_trend_agreement () =
  (* Fig. 10: both engines must agree on the ordering across W/L *)
  let tree = Fixtures.tree ~stages:2 ~fanout:3 () in
  let c = tree.Circuits.Inverter_tree.circuit in
  let delays engine =
    List.map
      (fun wl ->
        let m =
          Mtcmos.Sizing.delay_at
            ~ctx:Eval.Ctx.(default |> with_engine engine)
            c
            ~vectors:[ ([ (1, 0) ], [ (1, 1) ]) ]
            ~wl
        in
        m.Mtcmos.Sizing.mtcmos_delay)
      [ 5.0; 10.0; 20.0 ]
  in
  let bp = delays Eval.Breakpoint in
  let sp = delays Eval.Spice_level in
  let decreasing l =
    let rec go = function
      | a :: (b :: _ as rest) -> a > b && go rest
      | [ _ ] | [] -> true
    in
    go l
  in
  Alcotest.(check bool) "bp trend" true (decreasing bp);
  Alcotest.(check bool) "spice trend" true (decreasing sp)

let test_adder_vector_ordering () =
  (* Fig. 14's claim: the fast tool orders vectors like the detailed
     simulator.  Check rank correlation over a vector sample. *)
  let add = Fixtures.adder 2 in
  let c = add.Circuits.Ripple_adder.circuit in
  let pairs =
    [ ([ (2, 0); (2, 0) ], [ (2, 3); (2, 3) ]);
      ([ (2, 0); (2, 0) ], [ (2, 1); (2, 0) ]);
      ([ (2, 1); (2, 2) ], [ (2, 2); (2, 1) ]);
      ([ (2, 3); (2, 0) ], [ (2, 0); (2, 3) ]);
      ([ (2, 2); (2, 2) ], [ (2, 3); (2, 3) ]);
      ([ (2, 1); (2, 1) ], [ (2, 3); (2, 1) ]) ]
  in
  let cfg_bp = { BP.default_config with BP.sleep = sleep 6.0 } in
  let cfg_sp = { SR.default_config with SR.sleep = sleep 6.0; t_stop = 8e-9 } in
  let d_bp =
    List.map
      (fun (before, after) ->
        let r = BP.simulate_ints ~config:cfg_bp c ~before ~after in
        match BP.critical_delay r with Some (_, d) -> d | None -> 0.0)
      pairs
  in
  let d_sp =
    List.map
      (fun (before, after) ->
        let r = SR.run_ints ~config:cfg_sp c ~before ~after in
        match SR.critical_delay r with Some (_, d) -> d | None -> 0.0)
      pairs
  in
  let rho =
    Phys.Stats.rank_correlation (Array.of_list d_bp) (Array.of_list d_sp)
  in
  Alcotest.(check bool)
    (Printf.sprintf "rank correlation %.2f >= 0.5" rho)
    true (rho >= 0.5)

let test_spice_reverse_conduction_effect () =
  (* §2.3 in the transistor-level engine: while the tree discharges, a
     nominally-low output of an idle gate rides up above ground *)
  let b = Netlist.Circuit.builder tech in
  let flood_in = Netlist.Circuit.add_input ~name:"flood" b in
  let quiet_in = Netlist.Circuit.add_input ~name:"quiet" b in
  (* nine discharging inverters bounce the rail *)
  for i = 0 to 8 do
    let o =
      Netlist.Circuit.add_gate
        ~name:(Printf.sprintf "f%d" i)
        b Netlist.Gate.Inv [ flood_in ]
    in
    Netlist.Circuit.add_load b o 50e-15
  done;
  (* one idle inverter holding a low output *)
  let victim = Netlist.Circuit.add_gate ~name:"victim" b Netlist.Gate.Inv
      [ quiet_in ] in
  Netlist.Circuit.add_load b victim 20e-15;
  Netlist.Circuit.mark_output b victim;
  let c = Netlist.Circuit.freeze b in
  let cfg = { SR.default_config with SR.sleep = sleep 4.0; t_stop = 4e-9 } in
  let run =
    SR.run c ~before:[| S.L0; S.L1 |] ~after:[| S.L1; S.L1 |] ~config:cfg
  in
  let w = SR.net_waveform run victim in
  let _, v_peak = Phys.Pwl.extrema w in
  Alcotest.(check bool)
    (Printf.sprintf "victim low output bounced to %.0f mV" (v_peak *. 1e3))
    true
    (v_peak > 0.03);
  Alcotest.(check bool) "but stays below the rail bounce" true
    (v_peak <= SR.vx_peak run +. 0.05)

let test_cx_capacitance_helps () =
  (* §2.2: a big virtual-ground capacitor absorbs the transient *)
  let tree = Fixtures.tree ~stages:2 ~fanout:3 () in
  let c = tree.Circuits.Inverter_tree.circuit in
  let run cx =
    let cfg =
      { SR.default_config with SR.sleep = sleep 6.0; cx_extra = cx;
        t_stop = 6e-9 }
    in
    SR.run ~config:cfg c ~before:[| S.L0 |] ~after:[| S.L1 |]
  in
  let small = run 0.0 in
  let big = run 10e-12 in
  Alcotest.(check bool) "10 pF reduces the peak bounce" true
    (SR.vx_peak big < SR.vx_peak small)

let test_spice_ref_validation () =
  let tree = Fixtures.tree ~stages:2 ~fanout:2 () in
  let c = tree.Circuits.Inverter_tree.circuit in
  Alcotest.check_raises "x input" (Invalid_argument "Spice_ref.run: X input")
    (fun () -> ignore (SR.run c ~before:[| S.X |] ~after:[| S.L1 |]));
  let run = SR.run c ~before:[| S.L0 |] ~after:[| S.L0 |] in
  Alcotest.(check bool) "no transition, no delay" true
    (SR.critical_delay run = None);
  Alcotest.(check bool) "cmos run has no vground" true
    (SR.vground_waveform run = None)

let test_dc_matches_logic_random () =
  (* whole-stack validation: expand a random DAG, solve the transistor-
     level DC at static inputs, and require every net to sit at its
     logic-simulator rail *)
  let n_checked = ref 0 in
  List.iter
    (fun seed ->
      let r = Circuits.Random_logic.make ~seed tech ~inputs:4 ~gates:10 in
      let c = r.Circuits.Random_logic.circuit in
      let v = seed land 15 in
      let bits = Netlist.Signal.bits_of_int ~width:4 v in
      let stimuli =
        Array.to_list
          (Array.mapi
             (fun i n ->
               ( n,
                 Phys.Pwl.constant
                   (match bits.(i) with
                    | S.L1 -> 1.2
                    | S.L0 | S.X -> 0.0) ))
             (Netlist.Circuit.inputs c))
      in
      let inst = Netlist.Expand.expand c ~stimuli in
      let eng = Spice.Engine.prepare inst.Netlist.Expand.netlist in
      let x = Spice.Engine.dc eng in
      let logic = Netlist.Logic_sim.eval c bits in
      for net = 0 to Netlist.Circuit.num_nets c - 1 do
        let volt =
          Spice.Engine.voltage eng x inst.Netlist.Expand.node_of_net.(net)
        in
        incr n_checked;
        match logic.(net) with
        | S.L1 ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d net %d high (%.3f)" seed net volt)
            true (volt > 1.1)
        | S.L0 ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d net %d low (%.3f)" seed net volt)
            true (volt < 0.1)
        | S.X -> ()
      done)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Alcotest.(check bool) "checked many nets" true (!n_checked > 80)

let test_sleep_current_cross_engine () =
  (* §4's peak current, measured both ways *)
  let tree = Fixtures.tree ~stages:3 ~fanout:3 () in
  let c = tree.Circuits.Inverter_tree.circuit in
  let sl = sleep 20.0 in
  let sp_cfg = { SR.default_config with SR.sleep = sl; t_stop = 8e-9 } in
  let sp = SR.run_ints ~config:sp_cfg c ~before:[ (1, 0) ] ~after:[ (1, 1) ] in
  let i_sp = SR.peak_sleep_current sp in
  let bp_cfg = { BP.default_config with BP.sleep = sl } in
  let bp = BP.simulate_ints ~config:bp_cfg c ~before:[ (1, 0) ] ~after:[ (1, 1) ] in
  let i_bp = BP.peak_discharge_current bp in
  Alcotest.(check bool) "both positive" true (i_sp > 0.0 && i_bp > 0.0);
  let ratio = i_bp /. i_sp in
  Alcotest.(check bool)
    (Printf.sprintf "peak currents agree within 40%% (ratio %.2f)" ratio)
    true
    (ratio > 0.6 && ratio < 1.4)

let suite =
  [ Alcotest.test_case "chain cmos agreement" `Slow test_chain_cmos_agreement;
    Alcotest.test_case "dc matches logic (random)" `Slow
      test_dc_matches_logic_random;
    Alcotest.test_case "sleep current cross-engine" `Slow
      test_sleep_current_cross_engine;
    Alcotest.test_case "tree mtcmos agreement" `Slow
      test_tree_mtcmos_agreement;
    Alcotest.test_case "tree W/L trend agreement" `Slow
      test_tree_wl_trend_agreement;
    Alcotest.test_case "adder vector ordering" `Slow
      test_adder_vector_ordering;
    Alcotest.test_case "spice reverse conduction" `Slow
      test_spice_reverse_conduction_effect;
    Alcotest.test_case "cx capacitance helps" `Slow test_cx_capacitance_helps;
    Alcotest.test_case "spice_ref validation" `Quick test_spice_ref_validation ]
