(* Transient-engine tests against closed-form circuits. *)

module T = Netlist.Transistor

let tech = Fixtures.tech

let test_resistor_divider_dc () =
  let b = T.builder () in
  let top = T.node ~name:"top" b in
  let mid = T.node ~name:"mid" b in
  T.add b (T.Vsrc { pos = top; neg = T.ground; wave = Phys.Pwl.constant 2.0 });
  T.add b (T.Res { pos = top; neg = mid; r = 1000.0 });
  T.add b (T.Res { pos = mid; neg = T.ground; r = 3000.0 });
  let eng = Spice.Engine.prepare (T.freeze b) in
  let x = Spice.Engine.dc eng in
  Alcotest.(check (float 1e-6)) "divider" 1.5 (Spice.Engine.voltage eng x mid);
  Alcotest.(check (float 1e-6)) "source node" 2.0
    (Spice.Engine.voltage eng x top)

let rc_netlist () =
  (* source -- R -- node -- C -- gnd, source steps 1 -> 0 at t = 0:
     v(t) = exp (-t / RC) *)
  let b = T.builder () in
  let src = T.node ~name:"src" b in
  let n = T.node ~name:"out" b in
  let r = 1000.0 and c = 1e-12 in
  T.add b
    (T.Vsrc
       { pos = src; neg = T.ground;
         wave = Phys.Pwl.create [ (0.0, 1.0); (1e-15, 0.0) ] });
  T.add b (T.Res { pos = src; neg = n; r });
  T.add b (T.Cap { pos = n; neg = T.ground; c });
  (T.freeze b, n, r *. c)

let test_rc_discharge () =
  let netlist, n, tau = rc_netlist () in
  let eng = Spice.Engine.prepare netlist in
  let res =
    Spice.Engine.transient eng ~t_stop:(5.0 *. tau) ~dt:(tau /. 400.0)
  in
  let w = Spice.Engine.waveform res n in
  List.iter
    (fun k ->
      let t = float_of_int k *. tau in
      let expected = exp (-.t /. tau) in
      let got = Phys.Pwl.value_at w t in
      Alcotest.(check (float 0.01))
        (Printf.sprintf "exp decay at %d tau" k)
        expected got)
    [ 1; 2; 3 ]

let test_rc_trapezoidal () =
  let netlist, n, tau = rc_netlist () in
  let eng = Spice.Engine.prepare netlist in
  let res =
    Spice.Engine.transient ~integration:Spice.Engine.Trapezoidal eng
      ~t_stop:(3.0 *. tau) ~dt:(tau /. 100.0)
  in
  let w = Spice.Engine.waveform res n in
  Alcotest.(check (float 0.01)) "trapezoidal decay" (exp (-1.0))
    (Phys.Pwl.value_at w tau)

let test_record_subset () =
  let netlist, n, tau = rc_netlist () in
  let eng = Spice.Engine.prepare netlist in
  let res =
    Spice.Engine.transient eng ~t_stop:tau ~dt:(tau /. 50.0)
      ~record:(Spice.Engine.Nodes [ n ])
  in
  ignore (Spice.Engine.waveform res n);
  (try
     ignore (Spice.Engine.waveform res T.ground);
     Alcotest.fail "expected Not_found"
   with Not_found -> ());
  ignore (Spice.Engine.waveform_named res "out");
  Alcotest.(check bool) "steps counted" true
    (Spice.Engine.steps_taken res >= 50);
  Alcotest.(check bool) "newton iterations counted" true
    (Spice.Engine.newton_iterations res > 0)

let inverter_netlist ~wl_n ~wl_p ~cl ~vin_wave =
  let b = T.builder () in
  let vdd = T.node ~name:"vdd" b in
  let vin = T.node ~name:"vin" b in
  let vout = T.node ~name:"vout" b in
  T.add b (T.Vsrc { pos = vdd; neg = T.ground; wave = Phys.Pwl.constant 1.2 });
  T.add b (T.Vsrc { pos = vin; neg = T.ground; wave = vin_wave });
  T.add b
    (T.Mos
       { params = tech.Device.Tech.nmos; wl = wl_n; drain = vout; gate = vin;
         source = T.ground; body = T.ground });
  T.add b
    (T.Mos
       { params = tech.Device.Tech.pmos; wl = wl_p; drain = vout; gate = vin;
         source = vdd; body = vdd });
  T.add b (T.Cap { pos = vout; neg = T.ground; c = cl });
  (T.freeze b, vout)

let test_inverter_dc_levels () =
  (* input low -> output at vdd; input high -> output at 0 *)
  let netlist, vout =
    inverter_netlist ~wl_n:2.0 ~wl_p:4.0 ~cl:10e-15
      ~vin_wave:(Phys.Pwl.constant 0.0)
  in
  let eng = Spice.Engine.prepare netlist in
  let x = Spice.Engine.dc eng in
  Alcotest.(check (float 0.01)) "out high" 1.2
    (Spice.Engine.voltage eng x vout);
  let netlist, vout =
    inverter_netlist ~wl_n:2.0 ~wl_p:4.0 ~cl:10e-15
      ~vin_wave:(Phys.Pwl.constant 1.2)
  in
  let eng = Spice.Engine.prepare netlist in
  let x = Spice.Engine.dc eng in
  Alcotest.(check (float 0.01)) "out low" 0.0
    (Spice.Engine.voltage eng x vout)

let inverter_fall_delay ~cl =
  let edge = Phys.Pwl.create [ (0.0, 0.0); (50e-12, 0.0); (60e-12, 1.2) ] in
  let netlist, vout = inverter_netlist ~wl_n:2.0 ~wl_p:4.0 ~cl ~vin_wave:edge in
  let eng = Spice.Engine.prepare netlist in
  let res = Spice.Engine.transient eng ~t_stop:2e-9 ~dt:1e-12 in
  let w = Spice.Engine.waveform res vout in
  match
    Spice.Measure.propagation_delay ~vin:edge ~vout:w ~vdd:1.2
      ~in_rising:true ~out_rising:false
  with
  | Some d -> d
  | None -> Alcotest.fail "no output transition"

let test_inverter_delay_scales_with_load () =
  let d1 = inverter_fall_delay ~cl:20e-15 in
  let d2 = inverter_fall_delay ~cl:40e-15 in
  Alcotest.(check bool) "positive delay" true (d1 > 0.0);
  (* doubling CL roughly doubles delay *)
  Alcotest.(check bool) "delay ~ CL" true (d2 /. d1 > 1.6 && d2 /. d1 < 2.4)

let test_inverter_matches_alpha_model () =
  (* first-order model: t_pd = CL Vdd / (2 I_sat) *)
  let cl = 50e-15 in
  let d_sim = inverter_fall_delay ~cl in
  let ap = Device.Tech.nmos_alpha tech in
  let d_model = Device.Alpha_power.inverter_delay ap ~wl:2.0 ~cl ~vdd:1.2 in
  let ratio = d_sim /. d_model in
  Alcotest.(check bool)
    (Printf.sprintf "model within 2.5x of sim (ratio %.2f)" ratio)
    true
    (ratio > 0.4 && ratio < 2.5)

let test_measure_helpers () =
  let w = Phys.Pwl.create [ (0.0, 0.0); (1e-9, 1.2); (2e-9, 0.3) ] in
  Alcotest.(check (float 1e-15)) "peak over window" 1.2
    (Spice.Measure.peak_value w ~between:(0.0, 2e-9));
  let i =
    Spice.Measure.peak_current_through_cap w ~c:1e-12 ~window:(0.0, 2e-9)
      ~n:256
  in
  (* dV/dt = 1.2 V/ns on the rise: I = 1.2 mA *)
  Alcotest.(check bool) "cap current magnitude" true
    (i > 1.0e-3 && i < 1.4e-3);
  (match
     Spice.Measure.crossing_time w ~level:0.6 ~rising:true ~after:0.0
   with
   | Some t -> Alcotest.(check (float 1e-11)) "crossing" 0.5e-9 t
   | None -> Alcotest.fail "no crossing")

let test_no_convergence_reported () =
  Alcotest.check_raises "bad t_stop"
    (Invalid_argument "Engine.transient: t_stop <= 0") (fun () ->
      let netlist, _, _ = rc_netlist () in
      let eng = Spice.Engine.prepare netlist in
      ignore (Spice.Engine.transient eng ~t_stop:0.0))

let suite =
  [ Alcotest.test_case "resistor divider dc" `Quick test_resistor_divider_dc;
    Alcotest.test_case "rc discharge" `Quick test_rc_discharge;
    Alcotest.test_case "rc trapezoidal" `Quick test_rc_trapezoidal;
    Alcotest.test_case "record subset" `Quick test_record_subset;
    Alcotest.test_case "inverter dc levels" `Quick test_inverter_dc_levels;
    Alcotest.test_case "inverter delay vs load" `Quick
      test_inverter_delay_scales_with_load;
    Alcotest.test_case "inverter vs alpha model" `Quick
      test_inverter_matches_alpha_model;
    Alcotest.test_case "measure helpers" `Quick test_measure_helpers;
    Alcotest.test_case "transient arg validation" `Quick
      test_no_convergence_reported ]
