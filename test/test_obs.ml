(* Observability suite: the registry's bucket and merge semantics, the
   jobs-invariance of instrumented totals, the zero-event guarantee of
   the disabled path, and the well-formedness of emitted Chrome traces
   under parallel recording. *)

let tech = Fixtures.tech

(* --- Metrics: histogram bucket edges ------------------------------- *)

let test_histogram_bucket_edges () =
  let m = Obs.Metrics.create () in
  let buckets = [| 1.0; 2.0; 4.0 |] in
  List.iter
    (Obs.Metrics.observe ~buckets m "h")
    [ 0.5; 1.0; 1.5; 4.0; 5.0 ];
  match Obs.Metrics.get m "h" with
  | Some (Obs.Metrics.Dist d) ->
    Alcotest.(check (array (float 0.0))) "edges kept" buckets d.bounds;
    (* a sample lands in the first bucket with v <= edge: 1.0 is in the
       first bucket, 4.0 in the last real bucket, 5.0 overflows *)
    Alcotest.(check (array int))
      "per-bucket counts" [| 2; 1; 1; 1 |] d.counts;
    Alcotest.(check int) "total" 5 d.total;
    Alcotest.(check (float 1e-9)) "sum" 12.0 d.sum
  | _ -> Alcotest.fail "expected a Dist"

let test_kind_clash_rejected () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "x";
  Alcotest.(check bool)
    "recording a counter as a sum raises" true
    (try
       Obs.Metrics.addf m "x" 1.0;
       false
     with Invalid_argument _ -> true)

let test_merge_semantics () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.incr ~by:3 a "c";
  Obs.Metrics.incr ~by:4 b "c";
  Obs.Metrics.set_gauge a "g" 2.0;
  Obs.Metrics.set_gauge b "g" 7.0;
  Obs.Metrics.addf a "s" 0.25;
  Obs.Metrics.addf b "s" 0.5;
  Obs.Metrics.merge ~into:a b;
  Alcotest.(check int) "counters add" 7 (Obs.Metrics.count a "c");
  Alcotest.(check (float 0.0)) "gauges take max" 7.0 (Obs.Metrics.valuef a "g");
  Alcotest.(check (float 1e-12)) "sums add" 0.75 (Obs.Metrics.valuef a "s")

(* --- Jobs-invariance of instrumented totals ------------------------ *)

(* everything except the pool's own par.* self-metrics must be
   identical whatever the worker count *)
let non_pool_dump m =
  List.filter
    (fun (name, _) -> not (String.length name >= 4 && String.sub name 0 4 = "par."))
    (Obs.Metrics.dump m)

let sweep_workload ~obs ~jobs =
  let ch = Fixtures.chain 5 in
  let ctx =
    Eval.Ctx.default |> Eval.Ctx.with_obs obs |> Eval.Ctx.with_jobs jobs
  in
  Mtcmos.Sizing.sweep ~ctx ch.Circuits.Chain.circuit
    ~vectors:[ ([ (1, 0) ], [ (1, 1) ]); ([ (1, 1) ], [ (1, 0) ]) ]
    ~wls:[ 2.0; 5.0; 10.0; 20.0 ]

let test_registry_merge_deterministic () =
  let runs =
    List.map
      (fun jobs ->
        let obs = Obs.create () in
        let ms = sweep_workload ~obs ~jobs in
        (jobs, ms, non_pool_dump (Obs.metrics obs)))
      [ 1; 2; 4 ]
  in
  match runs with
  | (_, ms1, d1) :: rest ->
    Alcotest.(check bool)
      "sequential run recorded something" true
      (d1 <> []);
    List.iter
      (fun (jobs, ms, d) ->
        Alcotest.(check bool)
          (Printf.sprintf "measurements identical at jobs=%d" jobs)
          true (ms = ms1);
        Alcotest.(check bool)
          (Printf.sprintf "non-pool registry identical at jobs=%d" jobs)
          true (d = d1))
      rest
  | [] -> assert false

(* --- Disabled path: zero events, identical numbers ----------------- *)

let test_disabled_records_nothing () =
  Obs.incr Obs.disabled "phantom";
  Obs.addf Obs.disabled "phantom.f" 1.0;
  Obs.observe Obs.disabled "phantom.h" 1.0;
  Obs.max_gauge Obs.disabled "phantom.g" 9.0;
  Alcotest.(check bool)
    "registry stays empty" true
    (Obs.Metrics.dump (Obs.metrics Obs.disabled) = []);
  Alcotest.(check bool) "no trace sink" true (Obs.trace Obs.disabled = None);
  Alcotest.(check bool) "not enabled" false (Obs.enabled Obs.disabled);
  (* sharding the disabled instance must not allocate a live one *)
  let s = Obs.shard Obs.disabled in
  Alcotest.(check bool) "shard of disabled is disabled" false (Obs.enabled s);
  (* spans degrade to plain calls *)
  Alcotest.(check int) "span runs the thunk" 41
    (Obs.Span.with_ Obs.disabled "nop" (fun () -> 41))

let test_disabled_results_identical () =
  let off = sweep_workload ~obs:Obs.disabled ~jobs:2 in
  let on_ = sweep_workload ~obs:(Obs.create ~trace:true ()) ~jobs:2 in
  Alcotest.(check bool)
    "observability never changes the numbers" true
    (compare off on_ = 0)

(* --- Tracing: nesting, ordering, Chrome export --------------------- *)

(* within one tid, closed spans must be properly nested: any two either
   are disjoint in time or one contains the other *)
let check_nesting events =
  let tol = 1e-9 in
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let prev = try Hashtbl.find by_tid e.tid with Not_found -> [] in
      Hashtbl.replace by_tid e.tid (e :: prev))
    events;
  Hashtbl.iter
    (fun _ es ->
      List.iteri
        (fun i (a : Obs.Trace.event) ->
          List.iteri
            (fun j (b : Obs.Trace.event) ->
              if i < j then begin
                let a0 = a.ts and a1 = a.ts +. a.dur in
                let b0 = b.ts and b1 = b.ts +. b.dur in
                let disjoint = a1 <= b0 +. tol || b1 <= a0 +. tol in
                let a_in_b = b0 <= a0 +. tol && a1 <= b1 +. tol in
                let b_in_a = a0 <= b0 +. tol && b1 <= a1 +. tol in
                if not (disjoint || a_in_b || b_in_a) then
                  Alcotest.failf "spans %s and %s overlap without nesting"
                    a.name b.name
              end)
            es)
        es)
    by_tid

let test_span_nesting_parallel () =
  let obs = Obs.create ~trace:true () in
  ignore (sweep_workload ~obs ~jobs:2);
  match Obs.trace obs with
  | None -> Alcotest.fail "trace sink expected"
  | Some tr ->
    let events = Obs.Trace.events tr in
    Alcotest.(check bool) "events recorded" true (events <> []);
    (* the sweep itself must appear, wrapping the run on its tid *)
    Alcotest.(check bool)
      "sizing.sweep span present" true
      (List.exists (fun (e : Obs.Trace.event) -> e.name = "sizing.sweep")
         events);
    check_nesting events;
    (* events come back sorted by start time *)
    let rec sorted = function
      | (a : Obs.Trace.event) :: (b :: _ as rest) ->
        a.ts <= b.ts && sorted rest
      | _ -> true
    in
    Alcotest.(check bool) "events sorted by ts" true (sorted events)

let test_chrome_trace_validates () =
  let obs = Obs.create ~trace:true () in
  ignore (sweep_workload ~obs ~jobs:2);
  let file = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Obs.write_trace obs file;
      match Obs.Trace.validate_file file with
      | Error msgs ->
        Alcotest.failf "trace invalid: %s" (String.concat "; " msgs)
      | Ok check ->
        Alcotest.(check bool)
          "events checked" true
          (check.Obs.Trace.events_checked > 0);
        Alcotest.(check bool) "tids seen" true (check.Obs.Trace.tids >= 1);
        (* the breakpoint-engine sweep must reconcile simulate spans
           against the bp.simulations counter ("breakpoint simulations"
           in the validator's own wording) *)
        Alcotest.(check bool)
          "bp.simulate reconciled against counter" true
          (List.exists
             (fun (what, spans, counter) ->
               let re = "simulations" in
               let n = String.length what and m = String.length re in
               let rec find i =
                 i + m <= n && (String.sub what i m = re || find (i + 1))
               in
               find 0 && abs (spans - counter) <= 1)
             check.Obs.Trace.reconciled))

(* --- QCheck properties --------------------------------------------- *)

(* sharding invariance: however a stream of counter increments is
   partitioned over shards, the merged totals equal the sequential
   registry's *)
let prop_partition_invariant =
  QCheck.Test.make ~count:100 ~name:"obs: shard partition never changes totals"
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(int_range 0 60)
           (pair (int_range 0 4) (int_range 1 9))))
    (fun (nshards, ops) ->
      let name i = Printf.sprintf "m%d" i in
      let seq = Obs.Metrics.create () in
      List.iter (fun (i, by) -> Obs.Metrics.incr ~by seq (name i)) ops;
      let shards = Array.init nshards (fun _ -> Obs.Metrics.create ()) in
      List.iteri
        (fun k (i, by) ->
          Obs.Metrics.incr ~by shards.(k mod nshards) (name i))
        ops;
      let merged = Obs.Metrics.create () in
      Array.iter (fun s -> Obs.Metrics.merge ~into:merged s) shards;
      Obs.Metrics.dump merged = Obs.Metrics.dump seq)

(* histogram conservation: bucket counts partition the samples *)
let prop_histogram_conserves =
  QCheck.Test.make ~count:100 ~name:"obs: histogram buckets partition samples"
    QCheck.(list_of_size Gen.(int_range 0 50) (float_range 0.0 500.0))
    (fun vs ->
      let m = Obs.Metrics.create () in
      List.iter (Obs.Metrics.observe m "h") vs;
      match Obs.Metrics.get m "h" with
      | None -> vs = []
      | Some (Obs.Metrics.Dist d) ->
        d.total = List.length vs
        && Array.fold_left ( + ) 0 d.counts = d.total
      | Some _ -> false)

(* --- map_reduce_obs: the restored Pool observability path ---------- *)

let test_map_reduce_obs () =
  (* the labeled wrapper must agree with the plain map_reduce bit for
     bit (string concat is non-commutative, so order errors scramble
     it) and actually record the pool's self-metrics *)
  let n = 13 in
  let plain =
    Par.Pool.map_reduce ~jobs:3 ~chunk:2 ~n ~map:string_of_int
      ~reduce:( ^ ) ~init:""
  in
  let obs = Obs.create () in
  let with_obs =
    Par.Pool.map_reduce_obs ~obs ~jobs:3 ~chunk:2 ~n ~map:string_of_int
      ~reduce:( ^ ) ~init:""
  in
  Alcotest.(check string) "same reduction" plain with_obs;
  let m = Obs.metrics obs in
  Alcotest.(check bool)
    "pool call recorded" true
    (Obs.Metrics.count m "par.pool.calls" >= 1);
  Alcotest.(check (float 0.0)) "jobs gauge" 3.0 (Obs.Metrics.valuef m "par.jobs")

let suite =
  [ Alcotest.test_case "histogram bucket edges" `Quick
      test_histogram_bucket_edges;
    Alcotest.test_case "map_reduce_obs records pool metrics" `Quick
      test_map_reduce_obs;
    Alcotest.test_case "metric kind clash rejected" `Quick
      test_kind_clash_rejected;
    Alcotest.test_case "merge: counters add, gauges max" `Quick
      test_merge_semantics;
    Alcotest.test_case "registry identical at jobs 1/2/4" `Slow
      test_registry_merge_deterministic;
    Alcotest.test_case "disabled path records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "disabled vs enabled: identical numbers" `Quick
      test_disabled_results_identical;
    Alcotest.test_case "span nesting under jobs=2" `Quick
      test_span_nesting_parallel;
    Alcotest.test_case "chrome trace validates + reconciles" `Quick
      test_chrome_trace_validates;
    QCheck_alcotest.to_alcotest prop_partition_invariant;
    QCheck_alcotest.to_alcotest prop_histogram_conserves ]
