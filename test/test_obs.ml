(* Observability suite: the registry's bucket and merge semantics, the
   jobs-invariance of instrumented totals, the zero-event guarantee of
   the disabled path, and the well-formedness of emitted Chrome traces
   under parallel recording. *)

let tech = Fixtures.tech

(* --- Metrics: histogram bucket edges ------------------------------- *)

let test_histogram_bucket_edges () =
  let m = Obs.Metrics.create () in
  let buckets = [| 1.0; 2.0; 4.0 |] in
  List.iter
    (Obs.Metrics.observe ~buckets m "h")
    [ 0.5; 1.0; 1.5; 4.0; 5.0 ];
  match Obs.Metrics.get m "h" with
  | Some (Obs.Metrics.Dist d) ->
    Alcotest.(check (array (float 0.0))) "edges kept" buckets d.bounds;
    (* a sample lands in the first bucket with v <= edge: 1.0 is in the
       first bucket, 4.0 in the last real bucket, 5.0 overflows *)
    Alcotest.(check (array int))
      "per-bucket counts" [| 2; 1; 1; 1 |] d.counts;
    Alcotest.(check int) "total" 5 d.total;
    Alcotest.(check (float 1e-9)) "sum" 12.0 d.sum
  | _ -> Alcotest.fail "expected a Dist"

let test_kind_clash_rejected () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "x";
  Alcotest.(check bool)
    "recording a counter as a sum raises" true
    (try
       Obs.Metrics.addf m "x" 1.0;
       false
     with Invalid_argument _ -> true)

let test_merge_semantics () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.incr ~by:3 a "c";
  Obs.Metrics.incr ~by:4 b "c";
  Obs.Metrics.set_gauge a "g" 2.0;
  Obs.Metrics.set_gauge b "g" 7.0;
  Obs.Metrics.addf a "s" 0.25;
  Obs.Metrics.addf b "s" 0.5;
  Obs.Metrics.merge ~into:a b;
  Alcotest.(check int) "counters add" 7 (Obs.Metrics.count a "c");
  Alcotest.(check (float 0.0)) "gauges take max" 7.0 (Obs.Metrics.valuef a "g");
  Alcotest.(check (float 1e-12)) "sums add" 0.75 (Obs.Metrics.valuef a "s")

(* --- Jobs-invariance of instrumented totals ------------------------ *)

(* everything except the pool's own par.* self-metrics must be
   identical whatever the worker count *)
let non_pool_dump m =
  List.filter
    (fun (name, _) -> not (String.length name >= 4 && String.sub name 0 4 = "par."))
    (Obs.Metrics.dump m)

let sweep_workload ~obs ~jobs =
  let ch = Fixtures.chain 5 in
  let ctx =
    Eval.Ctx.default |> Eval.Ctx.with_obs obs |> Eval.Ctx.with_jobs jobs
  in
  Mtcmos.Sizing.sweep ~ctx ch.Circuits.Chain.circuit
    ~vectors:[ ([ (1, 0) ], [ (1, 1) ]); ([ (1, 1) ], [ (1, 0) ]) ]
    ~wls:[ 2.0; 5.0; 10.0; 20.0 ]

let test_registry_merge_deterministic () =
  let runs =
    List.map
      (fun jobs ->
        let obs = Obs.create () in
        let ms = sweep_workload ~obs ~jobs in
        (jobs, ms, non_pool_dump (Obs.metrics obs)))
      [ 1; 2; 4 ]
  in
  match runs with
  | (_, ms1, d1) :: rest ->
    Alcotest.(check bool)
      "sequential run recorded something" true
      (d1 <> []);
    List.iter
      (fun (jobs, ms, d) ->
        Alcotest.(check bool)
          (Printf.sprintf "measurements identical at jobs=%d" jobs)
          true (ms = ms1);
        Alcotest.(check bool)
          (Printf.sprintf "non-pool registry identical at jobs=%d" jobs)
          true (d = d1))
      rest
  | [] -> assert false

(* --- Disabled path: zero events, identical numbers ----------------- *)

let test_disabled_records_nothing () =
  Obs.incr Obs.disabled "phantom";
  Obs.addf Obs.disabled "phantom.f" 1.0;
  Obs.observe Obs.disabled "phantom.h" 1.0;
  Obs.max_gauge Obs.disabled "phantom.g" 9.0;
  Alcotest.(check bool)
    "registry stays empty" true
    (Obs.Metrics.dump (Obs.metrics Obs.disabled) = []);
  Alcotest.(check bool) "no trace sink" true (Obs.trace Obs.disabled = None);
  Alcotest.(check bool) "not enabled" false (Obs.enabled Obs.disabled);
  (* sharding the disabled instance must not allocate a live one *)
  let s = Obs.shard Obs.disabled in
  Alcotest.(check bool) "shard of disabled is disabled" false (Obs.enabled s);
  (* spans degrade to plain calls *)
  Alcotest.(check int) "span runs the thunk" 41
    (Obs.Span.with_ Obs.disabled "nop" (fun () -> 41))

let test_disabled_results_identical () =
  let off = sweep_workload ~obs:Obs.disabled ~jobs:2 in
  let on_ = sweep_workload ~obs:(Obs.create ~trace:true ()) ~jobs:2 in
  Alcotest.(check bool)
    "observability never changes the numbers" true
    (compare off on_ = 0)

(* --- Tracing: nesting, ordering, Chrome export --------------------- *)

(* within one tid, closed spans must be properly nested: any two either
   are disjoint in time or one contains the other *)
let check_nesting events =
  let tol = 1e-9 in
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let prev = try Hashtbl.find by_tid e.tid with Not_found -> [] in
      Hashtbl.replace by_tid e.tid (e :: prev))
    events;
  Hashtbl.iter
    (fun _ es ->
      List.iteri
        (fun i (a : Obs.Trace.event) ->
          List.iteri
            (fun j (b : Obs.Trace.event) ->
              if i < j then begin
                let a0 = a.ts and a1 = a.ts +. a.dur in
                let b0 = b.ts and b1 = b.ts +. b.dur in
                let disjoint = a1 <= b0 +. tol || b1 <= a0 +. tol in
                let a_in_b = b0 <= a0 +. tol && a1 <= b1 +. tol in
                let b_in_a = a0 <= b0 +. tol && b1 <= a1 +. tol in
                if not (disjoint || a_in_b || b_in_a) then
                  Alcotest.failf "spans %s and %s overlap without nesting"
                    a.name b.name
              end)
            es)
        es)
    by_tid

let test_span_nesting_parallel () =
  let obs = Obs.create ~trace:true () in
  ignore (sweep_workload ~obs ~jobs:2);
  match Obs.trace obs with
  | None -> Alcotest.fail "trace sink expected"
  | Some tr ->
    let events = Obs.Trace.events tr in
    Alcotest.(check bool) "events recorded" true (events <> []);
    (* the sweep itself must appear, wrapping the run on its tid *)
    Alcotest.(check bool)
      "sizing.sweep span present" true
      (List.exists (fun (e : Obs.Trace.event) -> e.name = "sizing.sweep")
         events);
    check_nesting events;
    (* events come back sorted by start time *)
    let rec sorted = function
      | (a : Obs.Trace.event) :: (b :: _ as rest) ->
        a.ts <= b.ts && sorted rest
      | _ -> true
    in
    Alcotest.(check bool) "events sorted by ts" true (sorted events)

let test_chrome_trace_validates () =
  let obs = Obs.create ~trace:true () in
  ignore (sweep_workload ~obs ~jobs:2);
  let file = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Obs.write_trace obs file;
      match Obs.Trace.validate_file file with
      | Error msgs ->
        Alcotest.failf "trace invalid: %s" (String.concat "; " msgs)
      | Ok check ->
        Alcotest.(check bool)
          "events checked" true
          (check.Obs.Trace.events_checked > 0);
        Alcotest.(check bool) "tids seen" true (check.Obs.Trace.tids >= 1);
        (* the breakpoint-engine sweep must reconcile simulate spans
           against the bp.simulations counter ("breakpoint simulations"
           in the validator's own wording) *)
        Alcotest.(check bool)
          "bp.simulate reconciled against counter" true
          (List.exists
             (fun (what, spans, counter) ->
               let re = "simulations" in
               let n = String.length what and m = String.length re in
               let rec find i =
                 i + m <= n && (String.sub what i m = re || find (i + 1))
               in
               find 0 && abs (spans - counter) <= 1)
             check.Obs.Trace.reconciled))

(* --- Hist.percentiles: bucket-edge semantics ----------------------- *)

let test_percentile_edges () =
  let bounds = [| 1.0; 2.0; 4.0 |] in
  let pct counts p = Obs.Metrics.Hist.percentile ~bounds ~counts p in
  (* empty histogram answers 0 *)
  Alcotest.(check (float 0.0)) "empty" 0.0 (pct [| 0; 0; 0; 0 |] 50.0);
  (* 2 samples in (0,1], one each in (1,2] and (2,4] *)
  let counts = [| 2; 1; 1; 0 |] in
  Alcotest.(check (float 1e-9)) "p0 at lower edge" 0.0 (pct counts 0.0);
  Alcotest.(check (float 1e-9)) "p50 at first bucket edge" 1.0
    (pct counts 50.0);
  Alcotest.(check (float 1e-9)) "p100 at last populated edge" 4.0
    (pct counts 100.0);
  (* linear interpolation inside a bucket *)
  Alcotest.(check (float 1e-9))
    "p25 interpolates" 2.5
    (Obs.Metrics.Hist.percentile ~bounds:[| 10.0 |] ~counts:[| 4; 0 |] 25.0);
  (* overflow samples clamp to the last finite edge *)
  Alcotest.(check (float 1e-9)) "overflow clamps" 4.0
    (pct [| 0; 0; 0; 5 |] 50.0);
  (* out-of-range p rejected *)
  Alcotest.(check bool)
    "p > 100 raises" true
    (try
       ignore (pct counts 101.0);
       false
     with Invalid_argument _ -> true);
  (* the triple helper and the Dist bridge agree *)
  let p50, p90, p99 = Obs.Metrics.Hist.percentiles ~bounds ~counts in
  let m = Obs.Metrics.create () in
  List.iter
    (Obs.Metrics.observe ~buckets:bounds m "h")
    [ 0.5; 0.7; 1.5; 3.0 ];
  (match Obs.Metrics.get m "h" with
  | Some v ->
    (match Obs.Metrics.Hist.percentiles_of_value v with
    | Some (q50, q90, q99) ->
      Alcotest.(check (float 1e-9)) "bridge p50" p50 q50;
      Alcotest.(check (float 1e-9)) "bridge p90" p90 q90;
      Alcotest.(check (float 1e-9)) "bridge p99" p99 q99
    | None -> Alcotest.fail "expected percentiles from a populated Dist")
  | None -> Alcotest.fail "histogram missing");
  Alcotest.(check bool)
    "empty Dist yields None" true
    (Obs.Metrics.Hist.percentiles_of_value (Obs.Metrics.Count 3) = None)

(* --- Prof: call-tree construction and exports ---------------------- *)

let test_prof_construction () =
  let ev name tid ts dur depth =
    { Obs.Trace.name; tid; ts; dur; depth; args = [] }
  in
  (* root [0,10] with two "child" calls at depth 1 *)
  let events =
    [ ev "root" 0 0.0 10.0 0; ev "child" 0 1.0 3.0 1; ev "child" 0 5.0 2.0 1 ]
  in
  let p = Obs.Prof.of_events events in
  (match Obs.Prof.paths p with
  | [ a; b ] ->
    Alcotest.(check (list string)) "root path" [ "root" ] a.Obs.Prof.path;
    Alcotest.(check int) "root calls" 1 a.Obs.Prof.calls;
    Alcotest.(check (float 1e-9)) "root total" 10.0 a.Obs.Prof.total_s;
    Alcotest.(check (float 1e-9)) "root self = total - children" 5.0
      a.Obs.Prof.self_s;
    Alcotest.(check (list string))
      "child path" [ "root"; "child" ] b.Obs.Prof.path;
    Alcotest.(check int) "child calls" 2 b.Obs.Prof.calls;
    Alcotest.(check (float 1e-9)) "child total" 5.0 b.Obs.Prof.total_s;
    Alcotest.(check (float 1e-9)) "child self" 5.0 b.Obs.Prof.self_s
  | ns -> Alcotest.failf "expected 2 paths, got %d" (List.length ns));
  Alcotest.(check string)
    "golden is label + calls, name-sorted" "child 2\nroot 1\n"
    (Obs.Prof.golden p);
  Alcotest.(check string)
    "collapsed stacks carry self-microseconds"
    "root 5000000\nroot;child 5000000\n"
    (Obs.Prof.to_collapsed p);
  (* labels aggregate across paths *)
  (match Obs.Prof.labels p with
  | [ ("child", 2, ct, cs); ("root", 1, rt, rs) ] ->
    Alcotest.(check (float 1e-9)) "child label total" 5.0 ct;
    Alcotest.(check (float 1e-9)) "child label self" 5.0 cs;
    Alcotest.(check (float 1e-9)) "root label total" 10.0 rt;
    Alcotest.(check (float 1e-9)) "root label self" 5.0 rs
  | _ -> Alcotest.fail "unexpected label aggregation");
  Alcotest.(check bool) "empty profile renders empty" true
    (Obs.Prof.to_collapsed Obs.Prof.empty = ""
    && Obs.Prof.render Obs.Prof.empty = "")

let collapsed_line_ok line =
  (* "frame[;frame]* <integer-microseconds>" *)
  match String.rindex_opt line ' ' with
  | None -> false
  | Some i ->
    i > 0
    && (match
          int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1))
        with
       | Some us -> us >= 0
       | None -> false)

let test_profile_collapsed_parseable () =
  let obs = Obs.create ~trace:true () in
  ignore (sweep_workload ~obs ~jobs:2);
  let collapsed = Obs.Prof.to_collapsed (Obs.profile obs) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' collapsed)
  in
  Alcotest.(check bool) "collapsed output nonempty" true (lines <> []);
  List.iter
    (fun l ->
      if not (collapsed_line_ok l) then
        Alcotest.failf "bad collapsed-stack line: %S" l)
    lines

(* the timing-free golden view must be byte-identical whatever the
   worker count or cache configuration: the same spans run either way *)
let test_profile_golden_invariant () =
  let golden ~jobs ~cache =
    let obs = Obs.create ~trace:true () in
    let ch = Fixtures.chain 5 in
    let ctx =
      Eval.Ctx.default |> Eval.Ctx.with_obs obs |> Eval.Ctx.with_jobs jobs
    in
    let ctx =
      if cache then Eval.Ctx.with_cache (Eval.Cache.create ()) ctx else ctx
    in
    ignore
      (Mtcmos.Sizing.sweep ~ctx ch.Circuits.Chain.circuit
         ~vectors:[ ([ (1, 0) ], [ (1, 1) ]); ([ (1, 1) ], [ (1, 0) ]) ]
         ~wls:[ 2.0; 5.0; 10.0; 20.0 ]);
    Obs.Prof.golden (Obs.profile obs)
  in
  let reference = golden ~jobs:1 ~cache:false in
  Alcotest.(check bool) "golden nonempty" true (reference <> "");
  List.iter
    (fun (jobs, cache) ->
      Alcotest.(check string)
        (Printf.sprintf "golden identical at jobs=%d cache=%b" jobs cache)
        reference
        (golden ~jobs ~cache))
    [ (4, false); (1, true); (4, true) ]

(* --- fast transient path: traces stay valid ------------------------ *)

let test_trace_valid_fast_bypass () =
  List.iter
    (fun jobs ->
      let obs = Obs.create ~trace:true () in
      let ch = Fixtures.chain 5 in
      let ctx =
        Eval.Ctx.default
        |> Eval.Ctx.with_engine Eval.Spice_level
        |> Eval.Ctx.with_fast `Reduce_bypass
        |> Eval.Ctx.with_obs obs |> Eval.Ctx.with_jobs jobs
      in
      ignore
        (Mtcmos.Sizing.sweep ~ctx ch.Circuits.Chain.circuit
           ~vectors:[ ([ (1, 0) ], [ (1, 1) ]) ]
           ~wls:[ 5.0; 20.0 ]);
      (match Obs.trace obs with
      | None -> Alcotest.fail "trace sink expected"
      | Some tr ->
        (match
           Obs.Trace.validate_string
             (Obs.Trace.to_chrome_json ~metrics:(Obs.metrics obs) tr)
         with
        | Ok check ->
          Alcotest.(check bool)
            (Printf.sprintf "events checked at jobs=%d" jobs)
            true
            (check.Obs.Trace.events_checked > 0)
        | Error msgs ->
          Alcotest.failf "fast-bypass trace invalid at jobs=%d: %s" jobs
            (String.concat "; " msgs)));
      (* the bypass instrumentation actually fired *)
      let m = Obs.metrics obs in
      Alcotest.(check bool)
        "bypass hit/miss counters recorded" true
        (Obs.Metrics.count m "spice.bypass.hits"
         + Obs.Metrics.count m "spice.bypass.misses"
         > 0);
      Alcotest.(check (float 0.0))
        "fast_mode gauge says reduce-bypass" 2.0
        (Obs.Metrics.valuef m "spice.fast_mode"))
    [ 1; 4 ]

(* --- Event_sim telemetry ------------------------------------------- *)

let test_event_sim_telemetry () =
  let module E = Netlist.Event_sim in
  let module S = Netlist.Signal in
  let ch = Fixtures.chain 6 in
  let c = ch.Circuits.Chain.circuit in
  let es = E.of_circuit c in
  let obs = Obs.create () in
  let state = ref (E.init es [| S.L0 |]) in
  let steps = 8 in
  for i = 1 to steps do
    let v = if i mod 2 = 0 then S.L0 else S.L1 in
    let m = E.step ~obs es !state [| v |] in
    state := m.E.post
  done;
  let m = Obs.metrics obs in
  Alcotest.(check int) "one counter tick per step" steps
    (Obs.Metrics.count m "event_sim.steps");
  Alcotest.(check bool)
    "touched gates accumulated" true
    (Obs.Metrics.count m "event_sim.touched_gates" > 0);
  (match Obs.Metrics.get m "event_sim.touched_per_step" with
  | Some (Obs.Metrics.Dist d) ->
    Alcotest.(check int) "touched histogram total = steps" steps d.total
  | _ -> Alcotest.fail "expected touched_per_step Dist");
  (match Obs.Metrics.get m "event_sim.pending_words_per_step" with
  | Some (Obs.Metrics.Dist d) ->
    Alcotest.(check int) "pending-bitset histogram total = steps" steps
      d.total
  | _ -> Alcotest.fail "expected pending_words_per_step Dist");
  (* disabled handle: same run, zero events *)
  let off = Obs.disabled in
  let st2 = ref (E.init es [| S.L0 |]) in
  let m2 = E.step ~obs:off es !st2 [| S.L1 |] in
  st2 := m2.E.post;
  Alcotest.(check bool)
    "disabled run records nothing" true
    (Obs.Metrics.dump (Obs.metrics off) = [])

(* --- QCheck properties --------------------------------------------- *)

(* sharding invariance: however a stream of counter increments is
   partitioned over shards, the merged totals equal the sequential
   registry's *)
let prop_partition_invariant =
  QCheck.Test.make ~count:100 ~name:"obs: shard partition never changes totals"
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(int_range 0 60)
           (pair (int_range 0 4) (int_range 1 9))))
    (fun (nshards, ops) ->
      let name i = Printf.sprintf "m%d" i in
      let seq = Obs.Metrics.create () in
      List.iter (fun (i, by) -> Obs.Metrics.incr ~by seq (name i)) ops;
      let shards = Array.init nshards (fun _ -> Obs.Metrics.create ()) in
      List.iteri
        (fun k (i, by) ->
          Obs.Metrics.incr ~by shards.(k mod nshards) (name i))
        ops;
      let merged = Obs.Metrics.create () in
      Array.iter (fun s -> Obs.Metrics.merge ~into:merged s) shards;
      Obs.Metrics.dump merged = Obs.Metrics.dump seq)

(* histogram conservation: bucket counts partition the samples *)
let prop_histogram_conserves =
  QCheck.Test.make ~count:100 ~name:"obs: histogram buckets partition samples"
    QCheck.(list_of_size Gen.(int_range 0 50) (float_range 0.0 500.0))
    (fun vs ->
      let m = Obs.Metrics.create () in
      List.iter (Obs.Metrics.observe m "h") vs;
      match Obs.Metrics.get m "h" with
      | None -> vs = []
      | Some (Obs.Metrics.Dist d) ->
        d.total = List.length vs
        && Array.fold_left ( + ) 0 d.counts = d.total
      | Some _ -> false)

(* --- map_reduce_obs: the restored Pool observability path ---------- *)

let test_map_reduce_obs () =
  (* the labeled wrapper must agree with the plain map_reduce bit for
     bit (string concat is non-commutative, so order errors scramble
     it) and actually record the pool's self-metrics *)
  let n = 13 in
  let plain =
    Par.Pool.map_reduce ~jobs:3 ~chunk:2 ~n ~map:string_of_int
      ~reduce:( ^ ) ~init:""
  in
  let obs = Obs.create () in
  let with_obs =
    Par.Pool.map_reduce_obs ~obs ~jobs:3 ~chunk:2 ~n ~map:string_of_int
      ~reduce:( ^ ) ~init:""
  in
  Alcotest.(check string) "same reduction" plain with_obs;
  let m = Obs.metrics obs in
  Alcotest.(check bool)
    "pool call recorded" true
    (Obs.Metrics.count m "par.pool.calls" >= 1);
  Alcotest.(check (float 0.0)) "jobs gauge" 3.0 (Obs.Metrics.valuef m "par.jobs")

let suite =
  [ Alcotest.test_case "histogram bucket edges" `Quick
      test_histogram_bucket_edges;
    Alcotest.test_case "map_reduce_obs records pool metrics" `Quick
      test_map_reduce_obs;
    Alcotest.test_case "metric kind clash rejected" `Quick
      test_kind_clash_rejected;
    Alcotest.test_case "merge: counters add, gauges max" `Quick
      test_merge_semantics;
    Alcotest.test_case "registry identical at jobs 1/2/4" `Slow
      test_registry_merge_deterministic;
    Alcotest.test_case "disabled path records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "disabled vs enabled: identical numbers" `Quick
      test_disabled_results_identical;
    Alcotest.test_case "span nesting under jobs=2" `Quick
      test_span_nesting_parallel;
    Alcotest.test_case "chrome trace validates + reconciles" `Quick
      test_chrome_trace_validates;
    Alcotest.test_case "percentiles: bucket edges and interpolation" `Quick
      test_percentile_edges;
    Alcotest.test_case "prof: call tree, self time, exports" `Quick
      test_prof_construction;
    Alcotest.test_case "prof: collapsed stacks parse" `Quick
      test_profile_collapsed_parseable;
    Alcotest.test_case "prof: golden invariant in jobs and cache" `Slow
      test_profile_golden_invariant;
    Alcotest.test_case "trace valid under --fast reduce-bypass" `Quick
      test_trace_valid_fast_bypass;
    Alcotest.test_case "event_sim telemetry counters" `Quick
      test_event_sim_telemetry;
    QCheck_alcotest.to_alcotest prop_partition_invariant;
    QCheck_alcotest.to_alcotest prop_histogram_conserves ]
