(* Tests for the analysis modules: worst-vector search, lint, variation,
   random-logic fuzzing, tables. *)

module BP = Mtcmos.Breakpoint_sim
module S = Netlist.Signal

let tech = Fixtures.tech

let sleep wl =
  BP.Sleep_fet (Device.Sleep.make tech.Device.Tech.sleep_nmos ~wl ~vdd:1.2)

(* ---- search --------------------------------------------------------------- *)

let test_search_matches_exhaustive_small () =
  (* on the 2-bit adder the climb must land close to the true worst *)
  let add = Fixtures.adder 2 in
  let c = add.Circuits.Ripple_adder.circuit in
  let sl = sleep 8.0 in
  let truth =
    Mtcmos.Search.exhaustive c ~sleep:sl ~widths:[ 2; 2 ]
      Mtcmos.Search.Max_delay
  in
  let found =
    Mtcmos.Search.hill_climb ~seed:3 ~restarts:6 c ~sleep:sl
      ~widths:[ 2; 2 ] Mtcmos.Search.Max_delay
  in
  Alcotest.(check bool)
    (Printf.sprintf "climb %.3g vs truth %.3g" found.Mtcmos.Search.score
       truth.Mtcmos.Search.score)
    true
    (found.Mtcmos.Search.score >= 0.9 *. truth.Mtcmos.Search.score);
  Alcotest.(check bool) "climb is cheaper than enumeration" true
    (found.Mtcmos.Search.evaluations < truth.Mtcmos.Search.evaluations * 4)

let test_search_objectives () =
  let add = Fixtures.adder 2 in
  let c = add.Circuits.Ripple_adder.circuit in
  let sl = sleep 8.0 in
  List.iter
    (fun obj ->
      let o =
        Mtcmos.Search.hill_climb ~seed:5 ~restarts:2 ~max_iters:100 c
          ~sleep:sl ~widths:[ 2; 2 ] obj
      in
      Alcotest.(check bool) "positive score found" true
        (o.Mtcmos.Search.score > 0.0))
    [ Mtcmos.Search.Max_degradation; Mtcmos.Search.Max_delay;
      Mtcmos.Search.Max_vx; Mtcmos.Search.Max_current ]

let test_search_deterministic () =
  let add = Fixtures.adder 2 in
  let c = add.Circuits.Ripple_adder.circuit in
  let sl = sleep 8.0 in
  let run () =
    Mtcmos.Search.hill_climb ~seed:11 ~restarts:2 ~max_iters:60 c ~sleep:sl
      ~widths:[ 2; 2 ] Mtcmos.Search.Max_vx
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same pair" true
    (a.Mtcmos.Search.pair = b.Mtcmos.Search.pair);
  Alcotest.(check (float 1e-15)) "same score" a.Mtcmos.Search.score
    b.Mtcmos.Search.score

let test_search_finds_multiplier_hotspot () =
  (* on the 8x8 multiplier the climb should reach at least vector B's
     degradation level at W/L = 60 (ideally towards vector A's) *)
  let t03 = Device.Tech.mtcmos_03um in
  let m = Fixtures.mult ~tech:t03 8 in
  let c = m.Circuits.Csa_multiplier.circuit in
  let sl =
    BP.Sleep_fet
      (Device.Sleep.make t03.Device.Tech.sleep_nmos ~wl:60.0 ~vdd:1.0)
  in
  let found =
    Mtcmos.Search.hill_climb ~seed:2 ~restarts:3 ~max_iters:250 c ~sleep:sl
      ~widths:[ 8; 8 ] Mtcmos.Search.Max_degradation
  in
  Alcotest.(check bool)
    (Printf.sprintf "found %.1f%% degradation (vector B gives ~5%%)"
       (100.0 *. found.Mtcmos.Search.score))
    true
    (found.Mtcmos.Search.score > 0.05)

(* ---- lint ------------------------------------------------------------------- *)

let test_lint_clean_circuit () =
  let add = Fixtures.adder 3 in
  let findings = Mtcmos.Lint.check add.Circuits.Ripple_adder.circuit in
  (* the adder is well-formed: no warnings beyond possible hotspot info *)
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Format.asprintf "unexpected: %a" Mtcmos.Lint.pp_finding f)
        true
        (f.Mtcmos.Lint.rule = "discharge-hotspot"))
    findings

let test_lint_weak_driver () =
  let b = Netlist.Circuit.builder tech in
  let a = Netlist.Circuit.add_input b in
  let o = Netlist.Circuit.add_gate b Netlist.Gate.Inv [ a ] in
  Netlist.Circuit.add_load b o 2e-12; (* 2 pF on a unit inverter *)
  Netlist.Circuit.mark_output b o;
  let c = Netlist.Circuit.freeze b in
  let findings = Mtcmos.Lint.check c in
  Alcotest.(check bool) "weak-driver flagged" true
    (List.exists (fun f -> f.Mtcmos.Lint.rule = "weak-driver") findings)

let test_lint_dangling_and_unused () =
  let b = Netlist.Circuit.builder tech in
  let a = Netlist.Circuit.add_input b in
  let unused = Netlist.Circuit.add_input b in
  ignore unused;
  let o1 = Netlist.Circuit.add_gate b Netlist.Gate.Inv [ a ] in
  let dangling = Netlist.Circuit.add_gate b Netlist.Gate.Inv [ a ] in
  ignore dangling;
  Netlist.Circuit.mark_output b o1;
  let c = Netlist.Circuit.freeze b in
  let findings = Mtcmos.Lint.check c in
  let has rule = List.exists (fun f -> f.Mtcmos.Lint.rule = rule) findings in
  Alcotest.(check bool) "dangling-output" true (has "dangling-output");
  Alcotest.(check bool) "unused-input" true (has "unused-input")

let test_lint_hotspot () =
  (* the inverter tree IS a discharge hotspot by construction *)
  let tree = Fixtures.tree ~stages:3 ~fanout:3 () in
  let findings =
    Mtcmos.Lint.check ~hotspot_fraction:0.4
      tree.Circuits.Inverter_tree.circuit
  in
  Alcotest.(check bool) "hotspot flagged" true
    (List.exists
       (fun f -> f.Mtcmos.Lint.rule = "discharge-hotspot")
       findings)

(* ---- variation ------------------------------------------------------------------ *)

let test_variation_monte_carlo () =
  let add = Fixtures.adder 2 in
  let c = add.Circuits.Ripple_adder.circuit in
  let vector = ([ (2, 0); (2, 1) ], [ (2, 3); (2, 2) ]) in
  let stats = Mtcmos.Variation.monte_carlo ~n:40 c ~wl:8.0 ~vector in
  Alcotest.(check int) "sample count" 40
    (Array.length stats.Mtcmos.Variation.samples);
  let s = stats.Mtcmos.Variation.delay_summary in
  Alcotest.(check bool) "delays positive" true (s.Phys.Stats.min > 0.0);
  Alcotest.(check bool) "spread exists" true (s.Phys.Stats.stddev > 0.0);
  Alcotest.(check bool) "p95 degradation above mean degradation" true
    (stats.Mtcmos.Variation.degradation_p95 > 0.0);
  (* deterministic given the seed *)
  let again = Mtcmos.Variation.monte_carlo ~n:40 c ~wl:8.0 ~vector in
  Alcotest.(check (float 1e-15)) "deterministic" s.Phys.Stats.mean
    again.Mtcmos.Variation.delay_summary.Phys.Stats.mean

let test_variation_slow_corner_slower () =
  (* raising vt and cutting kp must slow every sample: check the
     correlation direction on the samples themselves *)
  let add = Fixtures.adder 2 in
  let c = add.Circuits.Ripple_adder.circuit in
  let vector = ([ (2, 0); (2, 0) ], [ (2, 3); (2, 3) ]) in
  let stats =
    Mtcmos.Variation.monte_carlo ~n:60 ~sigma_vt:0.03 c ~wl:8.0 ~vector
  in
  let dvts =
    Array.map (fun s -> s.Mtcmos.Variation.dvt)
      stats.Mtcmos.Variation.samples
  in
  let delays =
    Array.map (fun s -> s.Mtcmos.Variation.delay)
      stats.Mtcmos.Variation.samples
  in
  let rho = Phys.Stats.correlation dvts delays in
  Alcotest.(check bool)
    (Printf.sprintf "higher vt, longer delay (rho = %.2f)" rho)
    true (rho > 0.5)

(* ---- random logic fuzzing --------------------------------------------------------- *)

let test_random_logic_structure () =
  let r = Circuits.Random_logic.make ~seed:42 tech ~inputs:5 ~gates:30 in
  let c = r.Circuits.Random_logic.circuit in
  Alcotest.(check int) "inputs" 5 (Array.length (Netlist.Circuit.inputs c));
  Alcotest.(check int) "gates" 30 (Netlist.Circuit.num_gates c);
  Alcotest.(check bool) "has outputs" true
    (Array.length (Netlist.Circuit.outputs c) > 0);
  (* deterministic per seed *)
  let r2 = Circuits.Random_logic.make ~seed:42 tech ~inputs:5 ~gates:30 in
  Alcotest.(check int) "same structure" (Netlist.Circuit.num_nets c)
    (Netlist.Circuit.num_nets r2.Circuits.Random_logic.circuit)

let prop_random_circuits_settle_to_logic =
  QCheck.Test.make ~count:40
    ~name:"fuzz: breakpoint sim settles random DAGs to the logic state"
    QCheck.(pair (int_bound 1000) (pair (int_bound 255) (int_bound 255)))
    (fun (seed, (v0, v1)) ->
      let r = Circuits.Random_logic.make ~seed tech ~inputs:6 ~gates:25 in
      let c = r.Circuits.Random_logic.circuit in
      let v0 = v0 land 63 and v1 = v1 land 63 in
      let cfg = BP.mtcmos_config tech ~wl:15.0 in
      let res =
        BP.simulate_ints ~config:cfg c ~before:[ (6, v0) ] ~after:[ (6, v1) ]
      in
      let target = Netlist.Logic_sim.eval_ints c [ (6, v1) ] in
      let t_end = BP.t_finish res +. 1e-12 in
      Array.for_all
        (fun n ->
          let v = Phys.Pwl.value_at (BP.waveform res n) t_end in
          match target.(n) with
          | S.L1 -> v > 0.6
          | S.L0 -> v < 0.6
          | S.X -> true)
        (Netlist.Circuit.outputs c))

let prop_random_circuits_monotone_in_wl =
  QCheck.Test.make ~count:25
    ~name:"fuzz: random DAG delay decreases with sleep size"
    QCheck.(int_bound 1000)
    (fun seed ->
      let r = Circuits.Random_logic.make ~seed tech ~inputs:5 ~gates:20 in
      let c = r.Circuits.Random_logic.circuit in
      let d wl =
        let cfg = BP.mtcmos_config tech ~wl in
        let res =
          BP.simulate_ints ~config:cfg c ~before:[ (5, 0) ]
            ~after:[ (5, 31) ]
        in
        match BP.critical_delay res with
        | Some (_, d) -> d
        | None -> 0.0
      in
      d 5.0 >= d 50.0 -. 1e-15)

(* ---- sequence driver -------------------------------------------------------- *)

let test_sequence_basic () =
  let add = Fixtures.adder 2 in
  let c = add.Circuits.Ripple_adder.circuit in
  let cfg = BP.mtcmos_config tech ~wl:10.0 in
  let vectors =
    [ [ (2, 0); (2, 0) ]; [ (2, 3); (2, 1) ]; [ (2, 1); (2, 2) ];
      [ (2, 1); (2, 2) ]; [ (2, 0); (2, 3) ] ]
  in
  let r = Mtcmos.Sequence.run ~config:cfg c ~period:5e-9 ~vectors in
  Alcotest.(check int) "one step per transition" 4
    (List.length r.Mtcmos.Sequence.steps);
  Alcotest.(check int) "generous period, no violations" 0
    r.Mtcmos.Sequence.violations;
  (match r.Mtcmos.Sequence.worst_delay with
   | Some (_, d) -> Alcotest.(check bool) "worst delay positive" true (d > 0.0)
   | None -> Alcotest.fail "no delays recorded");
  (* the idle cycle (same vector twice) records no delay *)
  let idle = List.nth r.Mtcmos.Sequence.steps 2 in
  Alcotest.(check bool) "idle cycle has no delay" true
    (idle.Mtcmos.Sequence.delay = None);
  Alcotest.(check bool) "rail bounced somewhere" true
    (r.Mtcmos.Sequence.worst_vx > 0.0)

let test_sequence_violations () =
  let add = Fixtures.adder 2 in
  let c = add.Circuits.Ripple_adder.circuit in
  (* a tiny sleep device plus a tight period must violate *)
  let cfg = BP.mtcmos_config tech ~wl:1.0 in
  let vectors = [ [ (2, 0); (2, 0) ]; [ (2, 3); (2, 3) ] ] in
  let r = Mtcmos.Sequence.run ~config:cfg c ~period:300e-12 ~vectors in
  Alcotest.(check int) "violation flagged" 1 r.Mtcmos.Sequence.violations

let test_sequence_random_workload () =
  let w = Mtcmos.Sequence.random_workload ~widths:[ 2; 2 ] 10 in
  Alcotest.(check int) "cycles" 10 (List.length w);
  let w2 = Mtcmos.Sequence.random_workload ~widths:[ 2; 2 ] 10 in
  Alcotest.(check bool) "deterministic" true (w = w2);
  Alcotest.check_raises "too short"
    (Invalid_argument "Sequence.run: need at least two vectors") (fun () ->
      let add = Fixtures.adder 2 in
      ignore
        (Mtcmos.Sequence.run add.Circuits.Ripple_adder.circuit
           ~period:1e-9 ~vectors:[ [ (2, 0); (2, 0) ] ]))

(* ---- adaptive stepping -------------------------------------------------------- *)

let test_adaptive_stepping () =
  (* RC discharge: adaptive must use fewer steps and stay accurate *)
  let b = Netlist.Transistor.builder () in
  let src = Netlist.Transistor.node b in
  let n = Netlist.Transistor.node ~name:"out" b in
  let r = 1000.0 and c = 1e-12 in
  let tau = r *. c in
  Netlist.Transistor.add b
    (Netlist.Transistor.Vsrc
       { pos = src; neg = Netlist.Transistor.ground;
         wave = Phys.Pwl.create [ (0.0, 1.0); (1e-15, 0.0) ] });
  Netlist.Transistor.add b
    (Netlist.Transistor.Res { pos = src; neg = n; r });
  Netlist.Transistor.add b
    (Netlist.Transistor.Cap { pos = n; neg = Netlist.Transistor.ground; c });
  let netlist = Netlist.Transistor.freeze b in
  let eng = Spice.Engine.prepare netlist in
  let fixed =
    Spice.Engine.transient eng ~t_stop:(5.0 *. tau) ~dt:(tau /. 200.0)
  in
  let adaptive =
    Spice.Engine.transient ~adaptive:true eng ~t_stop:(5.0 *. tau)
      ~dt:(tau /. 200.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fewer steps (%d vs %d)"
       (Spice.Engine.steps_taken adaptive)
       (Spice.Engine.steps_taken fixed))
    true
    (Spice.Engine.steps_taken adaptive < Spice.Engine.steps_taken fixed);
  let w = Spice.Engine.waveform adaptive n in
  Alcotest.(check (float 0.02)) "still accurate at 1 tau" (exp (-1.0))
    (Phys.Pwl.value_at w tau)

(* ---- resize ------------------------------------------------------------------ *)

let test_resize_fixes_weak_driver () =
  let b = Netlist.Circuit.builder tech in
  let a = Netlist.Circuit.add_input b in
  let o = Netlist.Circuit.add_gate b Netlist.Gate.Inv [ a ] in
  Netlist.Circuit.add_load b o 1e-12;
  Netlist.Circuit.mark_output b o;
  let c = Netlist.Circuit.freeze b in
  Alcotest.(check bool) "initially flagged" true
    (List.exists
       (fun f -> f.Mtcmos.Lint.rule = "weak-driver")
       (Mtcmos.Lint.check c));
  let rep = Mtcmos.Resize.fix_weak_drivers c in
  Alcotest.(check bool) "repaired circuit is clean" false
    (List.exists
       (fun f -> f.Mtcmos.Lint.rule = "weak-driver")
       (Mtcmos.Lint.check rep.Mtcmos.Resize.circuit));
  Alcotest.(check int) "one gate touched" 1
    (List.length rep.Mtcmos.Resize.upsized);
  (* the repaired gate got strictly stronger *)
  (match rep.Mtcmos.Resize.upsized with
   | [ (_, s) ] -> Alcotest.(check bool) "stronger" true (s > 1.0)
   | _ -> Alcotest.fail "unexpected upsizing record");
  (* the repair is also faster *)
  let d0 =
    (Mtcmos.Sta.critical_path (Mtcmos.Sta.analyze c)).Mtcmos.Sta.arrival
  in
  let d1 =
    (Mtcmos.Sta.critical_path
       (Mtcmos.Sta.analyze rep.Mtcmos.Resize.circuit))
      .Mtcmos.Sta.arrival
  in
  Alcotest.(check bool) "faster after resize" true (d1 < d0)

let test_resize_clean_circuit_untouched () =
  let add = Fixtures.adder 3 in
  let rep = Mtcmos.Resize.fix_weak_drivers add.Circuits.Ripple_adder.circuit in
  Alcotest.(check int) "nothing to do" 0
    (List.length rep.Mtcmos.Resize.upsized);
  Alcotest.(check int) "zero iterations" 0 rep.Mtcmos.Resize.iterations

let test_with_strengths () =
  let ch = Fixtures.chain 3 in
  let c = ch.Circuits.Chain.circuit in
  let c2 = Netlist.Circuit.with_strengths c (fun _ -> 3.0) in
  Array.iter
    (fun (g : Netlist.Circuit.gate_inst) ->
      Alcotest.(check (float 1e-12)) "strength set" 3.0
        g.Netlist.Circuit.strength)
    (Netlist.Circuit.gates c2);
  (* receivers got heavier: interior nets carry more load *)
  let mid = ch.Circuits.Chain.taps.(0) in
  Alcotest.(check bool) "loads recomputed upward" true
    (Netlist.Circuit.load_capacitance c2 mid
     > Netlist.Circuit.load_capacitance c mid);
  (* logic is untouched *)
  let st = Netlist.Logic_sim.eval c2 [| S.L1 |] in
  Alcotest.(check char) "logic preserved" '0'
    (S.to_char st.(ch.Circuits.Chain.taps.(2)))

(* ---- NLDM ---------------------------------------------------------------------- *)

let nldm_lib =
  lazy
    (Mtcmos.Nldm.characterize ~loads:[ 15e-15; 60e-15 ]
       ~ramps:[ 30e-12; 150e-12 ] tech
       [ Netlist.Gate.Inv; Netlist.Gate.Nand 2 ])

let test_nldm_interpolation () =
  let lib = Lazy.force nldm_lib in
  Alcotest.(check int) "two kinds" 2 (List.length (Mtcmos.Nldm.kinds lib));
  let d_lo = Mtcmos.Nldm.delay lib Netlist.Gate.Inv ~cl:15e-15 ~slew_in:30e-12 in
  let d_hi = Mtcmos.Nldm.delay lib Netlist.Gate.Inv ~cl:60e-15 ~slew_in:30e-12 in
  let d_mid = Mtcmos.Nldm.delay lib Netlist.Gate.Inv ~cl:37.5e-15 ~slew_in:30e-12 in
  Alcotest.(check bool) "monotone in load" true (d_hi > d_lo);
  Alcotest.(check bool) "interpolation between corners" true
    (d_mid > d_lo && d_mid < d_hi);
  (* clamped extrapolation *)
  Alcotest.(check (float 1e-15)) "clamp below"
    d_lo
    (Mtcmos.Nldm.delay lib Netlist.Gate.Inv ~cl:1e-15 ~slew_in:30e-12);
  let s = Mtcmos.Nldm.output_slew lib Netlist.Gate.Inv ~cl:60e-15 ~slew_in:30e-12 in
  Alcotest.(check bool) "slew positive" true (s > 0.0 && Float.is_finite s);
  (try
     ignore (Mtcmos.Nldm.delay lib Netlist.Gate.Xor2 ~cl:1e-15 ~slew_in:1e-12);
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

let test_nldm_sta () =
  let lib = Lazy.force nldm_lib in
  let ch = Fixtures.chain ~cl:50e-15 4 in
  let c = ch.Circuits.Chain.circuit in
  let t = Mtcmos.Nldm.sta lib c in
  let _, arrival = t.Mtcmos.Nldm.critical in
  Alcotest.(check bool) "arrival positive" true (arrival > 0.0);
  (* table STA should land within 2x of the first-order STA *)
  let fo = (Mtcmos.Sta.critical_path (Mtcmos.Sta.analyze c)).Mtcmos.Sta.arrival in
  let ratio = arrival /. fo in
  Alcotest.(check bool)
    (Printf.sprintf "within 2x of first-order (ratio %.2f)" ratio)
    true
    (ratio > 0.5 && ratio < 2.0);
  (* arrivals increase along the chain *)
  let a1 = t.Mtcmos.Nldm.arrival.(ch.Circuits.Chain.taps.(0)) in
  let a4 = t.Mtcmos.Nldm.arrival.(ch.Circuits.Chain.taps.(3)) in
  Alcotest.(check bool) "monotone along chain" true (a4 > a1)

(* ---- tables -------------------------------------------------------------------- *)

let test_table_basics () =
  let t = Phys.Table.create ~columns:[ "a"; "b" ] in
  Phys.Table.add_row t [ "x"; "y" ];
  Phys.Table.add_floats t [ 1.5; 2.5 ];
  Alcotest.(check int) "rows" 2 (List.length (Phys.Table.rows t));
  let csv = Phys.Table.to_csv t in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 4 && String.sub csv 0 4 = "a,b\n");
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: width mismatch") (fun () ->
      Phys.Table.add_row t [ "only-one" ])

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let test_table_csv_escaping () =
  let t = Phys.Table.create ~columns:[ "c" ] in
  Phys.Table.add_row t [ "has,comma" ];
  Phys.Table.add_row t [ "has\"quote" ];
  let csv = Phys.Table.to_csv t in
  Alcotest.(check bool) "comma quoted" true
    (string_contains csv "\"has,comma\"");
  Alcotest.(check bool) "quote doubled" true
    (string_contains csv "\"has\"\"quote\"")

let test_waveform_csv () =
  let w = Phys.Pwl.create [ (0.0, 0.0); (1.0, 1.0) ] in
  let t = Phys.Table.waveform_csv [ ("v", w) ] ~t0:0.0 ~t1:1.0 ~n:5 in
  Alcotest.(check int) "5 samples" 5 (List.length (Phys.Table.rows t));
  Alcotest.(check int) "2 columns" 2 (List.length (Phys.Table.columns t))

let suite =
  [ Alcotest.test_case "search matches exhaustive" `Quick
      test_search_matches_exhaustive_small;
    Alcotest.test_case "search objectives" `Quick test_search_objectives;
    Alcotest.test_case "search deterministic" `Quick
      test_search_deterministic;
    Alcotest.test_case "search multiplier hotspot" `Slow
      test_search_finds_multiplier_hotspot;
    Alcotest.test_case "lint clean circuit" `Quick test_lint_clean_circuit;
    Alcotest.test_case "lint weak driver" `Quick test_lint_weak_driver;
    Alcotest.test_case "lint dangling/unused" `Quick
      test_lint_dangling_and_unused;
    Alcotest.test_case "lint hotspot" `Quick test_lint_hotspot;
    Alcotest.test_case "variation monte carlo" `Quick
      test_variation_monte_carlo;
    Alcotest.test_case "variation slow corner" `Quick
      test_variation_slow_corner_slower;
    Alcotest.test_case "random logic structure" `Quick
      test_random_logic_structure;
    Alcotest.test_case "sequence basic" `Quick test_sequence_basic;
    Alcotest.test_case "sequence violations" `Quick
      test_sequence_violations;
    Alcotest.test_case "sequence random workload" `Quick
      test_sequence_random_workload;
    Alcotest.test_case "adaptive stepping" `Quick test_adaptive_stepping;
    Alcotest.test_case "resize fixes weak driver" `Quick
      test_resize_fixes_weak_driver;
    Alcotest.test_case "resize clean untouched" `Quick
      test_resize_clean_circuit_untouched;
    Alcotest.test_case "with_strengths" `Quick test_with_strengths;
    Alcotest.test_case "nldm interpolation" `Slow test_nldm_interpolation;
    Alcotest.test_case "nldm sta" `Slow test_nldm_sta;
    Alcotest.test_case "table basics" `Quick test_table_basics;
    Alcotest.test_case "table csv escaping" `Quick test_table_csv_escaping;
    Alcotest.test_case "waveform csv" `Quick test_waveform_csv;
    QCheck_alcotest.to_alcotest prop_random_circuits_settle_to_logic;
    QCheck_alcotest.to_alcotest prop_random_circuits_monotone_in_wl ]
