(* Resilience suite over the fault-injection corpus.

   Contract: every corpus case run through the Result-typed analyses
   either recovers (finite waveforms only) or returns a structured
   [Diag.failure] — never an uncaught exception, a non-finite sample or
   an unbounded run.  Run standalone via [dune build @resilience]. *)

module E = Spice.Engine
module D = Spice.Diag
module F = Spice.Faults
module R = Spice.Recover

let tech = Fixtures.tech

let finite_waveform w =
  List.for_all
    (fun (t, v) -> Float.is_finite t && Float.is_finite v)
    (Phys.Pwl.points w)

let check_diagnosis ~what (f : D.failure) =
  Alcotest.(check bool)
    (what ^ ": diagnosis carries a message")
    true
    (String.length f.D.message > 0);
  Alcotest.(check bool)
    (what ^ ": diagnosis renders")
    true
    (String.length (D.failure_to_string f) > 0)

(* recover-or-diagnose, one test per fault class *)
let transient_case fault () =
  let case = F.inject ~tech fault in
  let what = F.name fault in
  let eng = E.prepare case.F.netlist in
  let tm = D.create_telemetry () in
  match
    E.transient_r eng ~dt:case.F.dt ~t_stop:case.F.t_stop
      ~record:(E.Nodes [ case.F.watch ]) ~telemetry:tm
  with
  | Ok res ->
    Alcotest.(check bool)
      (what ^ ": recovered run has only finite samples")
      true
      (finite_waveform (E.waveform res case.F.watch));
    Alcotest.(check bool)
      (what ^ ": final solution is finite")
      true
      (Array.for_all Float.is_finite (E.final_solution res))
  | Error f -> check_diagnosis ~what f
  | exception e ->
    Alcotest.failf "%s: transient_r leaked exception %s" what
      (Printexc.to_string e)

let dc_case fault () =
  let case = F.inject ~tech fault in
  let what = F.name fault in
  let eng = E.prepare case.F.netlist in
  match E.dc_r eng with
  | Ok x ->
    Alcotest.(check bool)
      (what ^ ": DC solution is finite")
      true
      (Array.for_all Float.is_finite x)
  | Error f -> check_diagnosis ~what f
  | exception e ->
    Alcotest.failf "%s: dc_r leaked exception %s" what
      (Printexc.to_string e)

(* strict policy: no ladder — still no leaked exception, and a failure
   must name what was (not) tried *)
let strict_never_raises () =
  List.iter
    (fun (case : F.case) ->
      let eng = E.prepare case.F.netlist in
      (match E.dc_r ~policy:R.strict eng with
       | Ok _ -> ()
       | Error f ->
         Alcotest.(check (list string))
           (F.name case.F.fault ^ ": strict policy tried nothing")
           [] f.D.recovery_attempts
       | exception e ->
         Alcotest.failf "%s: strict dc_r leaked exception %s"
           (F.name case.F.fault) (Printexc.to_string e));
      match
        E.transient_r ~policy:R.strict eng ~dt:case.F.dt
          ~t_stop:case.F.t_stop ~record:(E.Nodes [ case.F.watch ])
      with
      | Ok _ | Error _ -> ()
      | exception e ->
        Alcotest.failf "%s: strict transient_r leaked exception %s"
          (F.name case.F.fault) (Printexc.to_string e))
    (F.corpus ~tech)

(* the Absurd_timestep case carries the unperturbed base deck; with a
   sane dt it is the suite's healthy reference *)
let healthy_deck () =
  let case = F.inject ~tech F.Absurd_timestep in
  (case.F.netlist, case.F.watch)

(* regression pin: a starved direct solve must be rescued by the gmin
   ladder, and the rescue must be visible in telemetry *)
let gmin_ladder_rescues () =
  let netlist, _ = healthy_deck () in
  let eng = E.prepare netlist in
  let policy = { R.default with R.direct_max_iter = 1 } in
  let tm = D.create_telemetry () in
  match E.dc_r ~policy ~telemetry:tm eng with
  | Error f ->
    Alcotest.failf "starved DC not rescued: %s" (D.failure_to_string f)
  | Ok x ->
    Alcotest.(check bool) "solution finite" true
      (Array.for_all Float.is_finite x);
    Alcotest.(check bool) "gmin ladder ran" true (tm.D.gmin_rounds > 0);
    Alcotest.(check bool) "rescue recorded" true
      (List.mem_assoc (R.strategy_name R.Gmin_ramp) tm.D.recoveries)

(* regression pin: source stepping alone rescues the same starved solve
   and lands on the plain DC answer (it warm-starts from the caller's
   seed, not from all-zeros) *)
let source_stepping_rescues () =
  let netlist, _ = healthy_deck () in
  let eng = E.prepare netlist in
  let reference =
    match E.dc_r eng with
    | Ok x -> x
    | Error f -> Alcotest.failf "reference DC failed: %s" f.D.message
  in
  let policy =
    { R.default with
      R.dc_strategies = [ R.Source_step ];
      direct_max_iter = 1 }
  in
  let tm = D.create_telemetry () in
  match E.dc_r ~policy ~telemetry:tm eng with
  | Error f ->
    Alcotest.failf "source stepping did not rescue: %s"
      (D.failure_to_string f)
  | Ok x ->
    Alcotest.(check bool) "source steps taken" true (tm.D.source_steps > 0);
    Alcotest.(check bool) "rescue recorded" true
      (List.mem_assoc (R.strategy_name R.Source_step) tm.D.recoveries);
    Array.iteri
      (fun i v ->
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "unknown %d matches plain DC" i)
          reference.(i) v)
      x

let transient_dt_validation () =
  let netlist, watch = healthy_deck () in
  let eng = E.prepare netlist in
  Alcotest.check_raises "dt > t_stop rejected"
    (Invalid_argument "Engine.transient: dt > t_stop") (fun () ->
      ignore
        (E.transient_r eng ~dt:2e-9 ~t_stop:1e-9
           ~record:(E.Nodes [ watch ])))

(* bounded effort: even the pathological corpus must finish quickly.
   Generous wall-clock bound — this guards against hangs, not speed. *)
let corpus_terminates_quickly () =
  let t0 = Sys.time () in
  List.iter
    (fun (case : F.case) ->
      let eng = E.prepare case.F.netlist in
      ignore (E.dc_r eng);
      ignore
        (E.transient_r eng ~dt:case.F.dt ~t_stop:case.F.t_stop
           ~record:(E.Nodes [ case.F.watch ])))
    (F.corpus ~tech);
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "corpus finished in %.1fs" elapsed)
    true (elapsed < 60.0)

let suite =
  List.map
    (fun fault ->
      Alcotest.test_case
        ("transient recover-or-diagnose: " ^ F.name fault)
        `Quick (transient_case fault))
    F.all
  @ List.map
      (fun fault ->
        Alcotest.test_case
          ("dc recover-or-diagnose: " ^ F.name fault)
          `Quick (dc_case fault))
      F.all
  @ [ Alcotest.test_case "strict policy never raises" `Quick
        strict_never_raises;
      Alcotest.test_case "gmin ladder rescues starved DC" `Quick
        gmin_ladder_rescues;
      Alcotest.test_case "source stepping rescues starved DC" `Quick
        source_stepping_rescues;
      Alcotest.test_case "transient rejects dt > t_stop" `Quick
        transient_dt_validation;
      Alcotest.test_case "fault corpus terminates quickly" `Slow
        corpus_terminates_quickly ]

let () = Alcotest.run "resilience" [ ("faults", suite) ]
