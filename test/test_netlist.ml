(* Netlist-layer tests: signals, gates, circuits, transistor netlists,
   expansion. *)

module S = Netlist.Signal
module G = Netlist.Gate
module C = Netlist.Circuit

let tech = Fixtures.tech

let test_signal_ops () =
  Alcotest.(check char) "not 0" '1' (S.to_char (S.lnot S.L0));
  Alcotest.(check char) "not x" 'x' (S.to_char (S.lnot S.X));
  Alcotest.(check char) "and short-circuit" '0'
    (S.to_char (S.land_ S.L0 S.X));
  Alcotest.(check char) "or short-circuit" '1' (S.to_char (S.lor_ S.X S.L1));
  Alcotest.(check char) "xor with x" 'x' (S.to_char (S.lxor_ S.L1 S.X));
  Alcotest.(check char) "maj3 known" '1'
    (S.to_char (S.majority3 S.L1 S.L1 S.X));
  Alcotest.(check char) "maj3 low" '0'
    (S.to_char (S.majority3 S.L0 S.X S.L0));
  Alcotest.(check char) "maj3 unknown" 'x'
    (S.to_char (S.majority3 S.L1 S.L0 S.X));
  Alcotest.(check char) "parity" '1'
    (S.to_char (S.parity [ S.L1; S.L1; S.L1 ]))

let test_signal_ints () =
  let bits = S.bits_of_int ~width:4 0b1010 in
  Alcotest.(check (option int)) "roundtrip" (Some 10) (S.int_of_bits bits);
  Alcotest.(check (option int)) "x poisons" None
    (S.int_of_bits [| S.L1; S.X |]);
  Alcotest.check_raises "overflow"
    (Invalid_argument "Signal.bits_of_int: value does not fit") (fun () ->
      ignore (S.bits_of_int ~width:2 5))

let test_aoi_oai_logic () =
  let l b = S.of_bool b in
  for v = 0 to 7 do
    let a = v land 1 = 1 and b = v land 2 = 2 and c = v land 4 = 4 in
    Alcotest.(check char) "aoi21"
      (S.to_char (l (not ((a && b) || c))))
      (S.to_char (G.logic G.Aoi21 [| l a; l b; l c |]));
    Alcotest.(check char) "oai21"
      (S.to_char (l (not ((a || b) && c))))
      (S.to_char (G.logic G.Oai21 [| l a; l b; l c |]))
  done;
  (* 6T each at transistor level *)
  let bld = C.builder tech in
  let a = C.add_input bld in
  let b2 = C.add_input bld in
  let c2 = C.add_input bld in
  let o1 = C.add_gate bld G.Aoi21 [ a; b2; c2 ] in
  let o2 = C.add_gate bld G.Oai21 [ a; b2; c2 ] in
  C.mark_output bld o1;
  C.mark_output bld o2;
  let circ = C.freeze bld in
  Alcotest.(check int) "12T total" 12 (C.transistor_count circ);
  let stim = Phys.Pwl.constant 0.0 in
  let inst =
    Netlist.Expand.expand circ
      ~stimuli:[ (a, stim); (b2, stim); (c2, stim) ]
  in
  Alcotest.(check int) "expanded 12 devices" 12
    (Netlist.Transistor.count inst.Netlist.Expand.netlist `Mos)

let test_gate_logic () =
  let l b = S.of_bool b in
  (* exhaustive truth tables for the primitive kinds *)
  for v = 0 to 7 do
    let a = v land 1 = 1 and b = v land 2 = 2 and c = v land 4 = 4 in
    Alcotest.(check char) "nand3"
      (S.to_char (l (not (a && b && c))))
      (S.to_char (G.logic (G.Nand 3) [| l a; l b; l c |]));
    Alcotest.(check char) "nor3"
      (S.to_char (l (not (a || b || c))))
      (S.to_char (G.logic (G.Nor 3) [| l a; l b; l c |]));
    let maj = (a && b) || (b && c) || (a && c) in
    Alcotest.(check char) "carry_inv = not majority"
      (S.to_char (l (not maj)))
      (S.to_char (G.logic G.Carry_inv [| l a; l b; l c |]));
    let parity = (a <> b) <> c in
    Alcotest.(check char) "sum_inv = not parity"
      (S.to_char (l (not parity)))
      (S.to_char (G.logic G.Sum_inv [| l a; l b; l c; l (not maj) |]))
  done;
  Alcotest.(check char) "xor2" '1'
    (S.to_char (G.logic G.Xor2 [| S.L1; S.L0 |]));
  Alcotest.(check char) "xnor2" '1'
    (S.to_char (G.logic G.Xnor2 [| S.L1; S.L1 |]));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Gate.logic inv: arity mismatch") (fun () ->
      ignore (G.logic G.Inv [| S.L0; S.L1 |]))

let test_gate_drive () =
  let inv = G.drive tech ~strength:1.0 G.Inv in
  let nand3 = G.drive tech ~strength:1.0 (G.Nand 3) in
  Alcotest.(check (float 1e-9)) "inv pulldown = unit"
    tech.Device.Tech.wl_n_unit inv.G.wl_pull_down;
  Alcotest.(check (float 1e-9)) "stacked nand keeps equivalent strength"
    inv.G.wl_pull_down nand3.G.wl_pull_down;
  Alcotest.(check bool) "stacking costs input cap" true
    (nand3.G.cin > inv.G.cin);
  let strong = G.drive tech ~strength:4.0 G.Inv in
  Alcotest.(check (float 1e-9)) "strength scales pulldown"
    (4.0 *. inv.G.wl_pull_down) strong.G.wl_pull_down;
  Alcotest.(check int) "mirror carry 10T" 10 (G.transistor_count G.Carry_inv);
  Alcotest.(check int) "mirror sum 14T" 14 (G.transistor_count G.Sum_inv)

let simple_circuit () =
  let b = C.builder tech in
  let a = C.add_input ~name:"a" b in
  let n1 = C.add_gate ~name:"n1" b G.Inv [ a ] in
  let n2 = C.add_gate ~name:"n2" b (G.Nand 2) [ a; n1 ] in
  C.add_load b n2 10e-15;
  C.mark_output ~name:"out" b n2;
  (C.freeze b, a, n1, n2)

let test_circuit_builder () =
  let c, a, n1, n2 = simple_circuit () in
  Alcotest.(check int) "nets" 3 (C.num_nets c);
  Alcotest.(check int) "gates" 2 (C.num_gates c);
  Alcotest.(check int) "inputs" 1 (Array.length (C.inputs c));
  Alcotest.(check int) "outputs" 1 (Array.length (C.outputs c));
  Alcotest.(check int) "fanout of a" 2 (List.length (C.fanout c a));
  Alcotest.(check int) "fanout of n1" 1 (List.length (C.fanout c n1));
  Alcotest.(check bool) "driver of n2 exists" true
    (C.gate_of_output c n2 <> None);
  Alcotest.(check bool) "input has no driver" true
    (C.gate_of_output c a = None);
  Alcotest.(check int) "find by name" n2 (C.find_net c "out");
  Alcotest.(check string) "net name" "n1" (C.net_name c n1);
  Alcotest.(check bool) "load includes explicit cap" true
    (C.load_capacitance c n2 >= 10e-15);
  Alcotest.(check bool) "internal net loaded by pin caps" true
    (C.load_capacitance c n1 > 0.0);
  Alcotest.(check int) "transistors" (2 + 4) (C.transistor_count c);
  Alcotest.(check bool) "total pulldown wl" true
    (C.total_pulldown_wl c > 0.0)

let test_circuit_errors () =
  let b = C.builder tech in
  let a = C.add_input b in
  Alcotest.check_raises "arity"
    (Invalid_argument "Circuit.add_gate nand2: expected 2 inputs, got 1")
    (fun () -> ignore (C.add_gate b (G.Nand 2) [ a ]));
  Alcotest.check_raises "unknown net"
    (Invalid_argument "Circuit.add_gate: unknown input net") (fun () ->
      ignore (C.add_gate b G.Inv [ 99 ]));
  Alcotest.check_raises "negative load"
    (Invalid_argument "Circuit.add_load: negative capacitance") (fun () ->
      C.add_load b a (-1.0));
  let b2 = C.builder tech in
  ignore (C.add_input ~name:"x" b2);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Circuit: duplicate net name \"x\"") (fun () ->
      ignore (C.add_input ~name:"x" b2))

let test_ties () =
  let b = C.builder tech in
  let a = C.add_input b in
  let hi = C.add_tie b true in
  let out = C.add_gate b (G.Nand 2) [ a; hi ] in
  C.mark_output b out;
  let c = C.freeze b in
  Alcotest.(check int) "tie not an input" 1 (Array.length (C.inputs c));
  Alcotest.(check int) "one tie" 1 (Array.length (C.ties c));
  let st = Netlist.Logic_sim.eval c [| S.L1 |] in
  Alcotest.(check char) "nand with tie-high acts as inv" '0'
    (S.to_char st.(out))

let test_transistor_builder () =
  let b = Netlist.Transistor.builder () in
  let n1 = Netlist.Transistor.node ~name:"x" b in
  Netlist.Transistor.add b
    (Netlist.Transistor.Res { pos = n1; neg = Netlist.Transistor.ground; r = 100.0 });
  Netlist.Transistor.add b
    (Netlist.Transistor.Cap { pos = n1; neg = Netlist.Transistor.ground; c = 1e-15 });
  let t = Netlist.Transistor.freeze b in
  Alcotest.(check int) "nodes" 2 (Netlist.Transistor.num_nodes t);
  Alcotest.(check int) "res count" 1 (Netlist.Transistor.count t `Res);
  Alcotest.(check int) "cap count" 1 (Netlist.Transistor.count t `Cap);
  Alcotest.(check int) "find node" n1 (Netlist.Transistor.find_node t "x");
  Alcotest.(check string) "ground name" "gnd"
    (Netlist.Transistor.node_name t 0);
  let b2 = Netlist.Transistor.builder () in
  Alcotest.check_raises "bad cap"
    (Invalid_argument "Transistor.add: c <= 0") (fun () ->
      Netlist.Transistor.add b2
        (Netlist.Transistor.Cap { pos = 0; neg = 0; c = 0.0 }))

let expand_tree config =
  let tree = Fixtures.tree ~stages:2 ~fanout:3 () in
  let c = tree.Circuits.Inverter_tree.circuit in
  let stim = Phys.Pwl.constant 0.0 in
  Netlist.Expand.expand ~config c
    ~stimuli:[ (tree.Circuits.Inverter_tree.input, stim) ]

let test_expand_cmos () =
  let inst = expand_tree Netlist.Expand.default in
  let t = inst.Netlist.Expand.netlist in
  (* 4 inverters: 8 mosfets, no sleep device *)
  Alcotest.(check int) "mos count" 8 (Netlist.Transistor.count t `Mos);
  Alcotest.(check bool) "no virtual ground" true
    (inst.Netlist.Expand.vground = None)

let test_expand_mtcmos () =
  let inst = expand_tree (Netlist.Expand.mtcmos ~wl:10.0) in
  let t = inst.Netlist.Expand.netlist in
  Alcotest.(check int) "mos count includes sleep" 9
    (Netlist.Transistor.count t `Mos);
  Alcotest.(check bool) "virtual ground present" true
    (inst.Netlist.Expand.vground <> None);
  (* sources: vdd, sleep gate, one input *)
  Alcotest.(check int) "source count" 3 (Netlist.Transistor.count t `Vsrc)

let test_expand_resistor_model () =
  let cfg =
    { Netlist.Expand.default with Netlist.Expand.resistor_model = Some 500.0 }
  in
  let inst = expand_tree cfg in
  let t = inst.Netlist.Expand.netlist in
  Alcotest.(check int) "resistor inserted" 1 (Netlist.Transistor.count t `Res);
  Alcotest.(check bool) "virtual ground present" true
    (inst.Netlist.Expand.vground <> None)

let test_expand_mirror_adder () =
  (* one mirror FA cell must expand to exactly 28 transistors *)
  let b = C.builder tech in
  let a = C.add_input b in
  let x = C.add_input b in
  let cin = C.add_input b in
  let cell = Circuits.Mirror_adder.add_cell b ~a ~b:x ~cin in
  C.mark_output b cell.Circuits.Mirror_adder.sum;
  C.mark_output b cell.Circuits.Mirror_adder.cout;
  let c = C.freeze b in
  Alcotest.(check int) "28T mirror adder" 28 (C.transistor_count c);
  let stim = Phys.Pwl.constant 0.0 in
  let inst =
    Netlist.Expand.expand c
      ~stimuli:[ (a, stim); (x, stim); (cin, stim) ]
  in
  Alcotest.(check int) "expanded device count" 28
    (Netlist.Transistor.count inst.Netlist.Expand.netlist `Mos)

let test_expand_missing_stimulus () =
  let tree = Fixtures.tree ~stages:2 ~fanout:2 () in
  Alcotest.check_raises "missing stimulus"
    (Invalid_argument "Expand: primary input in has no stimulus") (fun () ->
      ignore
        (Netlist.Expand.expand tree.Circuits.Inverter_tree.circuit
           ~stimuli:[]))

let test_depth_and_dot () =
  let tree = Fixtures.tree ~stages:3 ~fanout:2 () in
  let c = tree.Circuits.Inverter_tree.circuit in
  Alcotest.(check int) "tree depth" 3 (C.logic_depth c);
  let dot = C.to_dot c in
  Alcotest.(check bool) "dot header" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "dot mentions gates" true
    (String.length dot > 0
     && List.exists
          (fun line ->
            String.length line > 0
            && String.length line >= 5
            &&
            let rec has i =
              i + 3 <= String.length line
              && (String.sub line i 3 = "inv" || has (i + 1))
            in
            has 0)
          (String.split_on_char '\n' dot))

let prop_expand_matches_transistor_count =
  QCheck.Test.make ~count:30
    ~name:"expand: device count equals the gate-level census"
    QCheck.(int_bound 500)
    (fun seed ->
      let r = Circuits.Random_logic.make ~seed tech ~inputs:4 ~gates:12 in
      let c = r.Circuits.Random_logic.circuit in
      let stim = Phys.Pwl.constant 0.0 in
      let stimuli =
        Array.to_list
          (Array.map (fun n -> (n, stim)) (Netlist.Circuit.inputs c))
      in
      let inst = Netlist.Expand.expand c ~stimuli in
      Netlist.Transistor.count inst.Netlist.Expand.netlist `Mos
      = Netlist.Circuit.transistor_count c)

let prop_signal_int_roundtrip =
  QCheck.Test.make ~count:200 ~name:"signal: bits_of_int roundtrips"
    QCheck.(pair (int_range 1 20) (int_bound 1_000_000))
    (fun (width, v) ->
      let v = v land ((1 lsl width) - 1) in
      S.int_of_bits (S.bits_of_int ~width v) = Some v)

let prop_gate_logic_total =
  let kinds =
    [ G.Inv; G.Buf; G.Nand 2; G.Nand 4; G.Nor 3; G.And 2; G.Or 3; G.Xor2;
      G.Xnor2; G.Aoi21; G.Oai21; G.Carry_inv; G.Sum_inv ]
  in
  QCheck.Test.make ~count:300
    ~name:"gate: logic total on binary inputs and never X"
    QCheck.(pair (int_bound (List.length kinds - 1)) (int_bound 255))
    (fun (ki, v) ->
      let kind = List.nth kinds ki in
      let n = G.arity kind in
      let pins =
        Array.init n (fun i -> S.of_bool ((v lsr i) land 1 = 1))
      in
      match G.logic kind pins with S.L0 | S.L1 -> true | S.X -> false)

let suite =
  [ Alcotest.test_case "signal ops" `Quick test_signal_ops;
    Alcotest.test_case "signal ints" `Quick test_signal_ints;
    Alcotest.test_case "gate logic" `Quick test_gate_logic;
    Alcotest.test_case "aoi/oai gates" `Quick test_aoi_oai_logic;
    Alcotest.test_case "gate drive" `Quick test_gate_drive;
    Alcotest.test_case "circuit builder" `Quick test_circuit_builder;
    Alcotest.test_case "circuit errors" `Quick test_circuit_errors;
    Alcotest.test_case "ties" `Quick test_ties;
    Alcotest.test_case "transistor builder" `Quick test_transistor_builder;
    Alcotest.test_case "expand cmos" `Quick test_expand_cmos;
    Alcotest.test_case "expand mtcmos" `Quick test_expand_mtcmos;
    Alcotest.test_case "expand resistor model" `Quick test_expand_resistor_model;
    Alcotest.test_case "expand mirror adder" `Quick test_expand_mirror_adder;
    Alcotest.test_case "expand missing stimulus" `Quick
      test_expand_missing_stimulus;
    Alcotest.test_case "depth and dot export" `Quick test_depth_and_dot;
    QCheck_alcotest.to_alcotest prop_expand_matches_transistor_count;
    QCheck_alcotest.to_alcotest prop_signal_int_roundtrip;
    QCheck_alcotest.to_alcotest prop_gate_logic_total ]
