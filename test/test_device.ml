(* Device model tests: Level-1 MOSFET, alpha-power law, leakage, sleep
   transistor. *)

let tech = Fixtures.tech
let nmos = tech.Device.Tech.nmos
let pmos = tech.Device.Tech.pmos
let high_vt = tech.Device.Tech.sleep_nmos

let bias vgs vds vbs = { Device.Mosfet.vgs; vds; vbs }

let test_regions () =
  (* off *)
  let off = Device.Mosfet.eval nmos ~wl:1.0 (bias 0.0 1.0 0.0) in
  Alcotest.(check bool) "off current tiny" true
    (off.Device.Mosfet.ids < 1e-6);
  (* saturation: vds > vov *)
  let sat = Device.Mosfet.eval nmos ~wl:1.0 (bias 1.2 1.2 0.0) in
  let vov = 1.2 -. nmos.Device.Mosfet.vt0 in
  let expect = 0.5 *. nmos.Device.Mosfet.kp *. vov *. vov in
  Alcotest.(check bool) "sat current near square law" true
    (Float.abs (sat.Device.Mosfet.ids -. expect) /. expect < 0.1);
  (* triode < saturation *)
  let tri = Device.Mosfet.eval nmos ~wl:1.0 (bias 1.2 0.1 0.0) in
  Alcotest.(check bool) "triode below sat" true
    (tri.Device.Mosfet.ids < sat.Device.Mosfet.ids);
  Alcotest.(check bool) "all conductances finite" true
    (List.for_all Float.is_finite
       [ sat.Device.Mosfet.gm; sat.Device.Mosfet.gds; sat.Device.Mosfet.gmb ])

let test_region_continuity () =
  (* current is continuous across the triode/saturation boundary *)
  let vov = 1.2 -. nmos.Device.Mosfet.vt0 in
  let below = Device.Mosfet.ids nmos ~wl:1.0 (bias 1.2 (vov -. 1e-7) 0.0) in
  let above = Device.Mosfet.ids nmos ~wl:1.0 (bias 1.2 (vov +. 1e-7) 0.0) in
  Alcotest.(check bool) "triode/sat continuity" true
    (Float.abs (below -. above) /. above < 1e-3);
  (* and across vds = 0 *)
  let neg = Device.Mosfet.ids nmos ~wl:1.0 (bias 1.2 (-1e-7) 0.0) in
  let pos = Device.Mosfet.ids nmos ~wl:1.0 (bias 1.2 1e-7 0.0) in
  Alcotest.(check bool) "vds=0 continuity" true (Float.abs (neg -. pos) < 1e-7)

let test_reverse_symmetry () =
  (* ids(vds) = -ids with terminals swapped: exercised by the
     reverse-conduction paths of the paper's §2.3 *)
  let fwd = Device.Mosfet.ids nmos ~wl:2.0 (bias 1.2 0.3 0.0) in
  let rev = Device.Mosfet.ids nmos ~wl:2.0 (bias (1.2 -. 0.3) (-0.3) (-0.3)) in
  Alcotest.(check (float 1e-9)) "source/drain symmetry" fwd (-.rev);
  Alcotest.(check bool) "reverse current negative" true (rev < 0.0)

let test_body_effect () =
  let vth0 = Device.Mosfet.threshold nmos ~vbs:0.0 in
  let vth_rev = Device.Mosfet.threshold nmos ~vbs:(-0.3) in
  Alcotest.(check (float 1e-9)) "zero-bias threshold"
    nmos.Device.Mosfet.vt0 vth0;
  Alcotest.(check bool) "reverse body bias raises vth" true (vth_rev > vth0);
  (* source bounce reduces current twice over: smaller vgs and higher vth *)
  let i0 = Device.Mosfet.ids nmos ~wl:1.0 (bias 1.2 1.2 0.0) in
  let i_bounce = Device.Mosfet.ids nmos ~wl:1.0 (bias 0.9 0.9 (-0.3)) in
  Alcotest.(check bool) "bounce reduces current" true (i_bounce < i0)

let test_pmos () =
  (* a PMOS conducts with negative vgs/vds, current flows source->drain *)
  let on = Device.Mosfet.eval pmos ~wl:1.0 (bias (-1.2) (-1.2) 0.0) in
  Alcotest.(check bool) "pmos on, negative ids" true
    (on.Device.Mosfet.ids < -1e-6);
  let off = Device.Mosfet.eval pmos ~wl:1.0 (bias 0.0 (-1.2) 0.0) in
  Alcotest.(check bool) "pmos off" true
    (Float.abs off.Device.Mosfet.ids < 1e-6)

let test_wl_scaling () =
  let i1 = Device.Mosfet.ids nmos ~wl:1.0 (bias 1.2 1.2 0.0) in
  let i4 = Device.Mosfet.ids nmos ~wl:4.0 (bias 1.2 1.2 0.0) in
  Alcotest.(check (float 1e-9)) "current scales with wl" (4.0 *. i1) i4

let test_alpha_power () =
  let ap = Device.Tech.nmos_alpha tech in
  let i = Device.Alpha_power.sat_current ap ~wl:1.0 ~vgs:1.2 ~vsb:0.0 in
  Alcotest.(check bool) "alpha current positive" true (i > 0.0);
  (* alpha = 2 recovers the square law exactly *)
  let ap2 = Device.Alpha_power.of_level1 nmos ~alpha:2.0 in
  let isq = Device.Alpha_power.sat_current ap2 ~wl:3.0 ~vgs:1.2 ~vsb:0.0 in
  let lvl1 = Device.Mosfet.saturation_current nmos ~wl:3.0 ~vgs:1.2 ~vbs:0.0 in
  Alcotest.(check (float 1e-12)) "alpha=2 matches level1" lvl1 isq;
  (* off below threshold *)
  Alcotest.(check (float 1e-15)) "off" 0.0
    (Device.Alpha_power.sat_current ap ~wl:1.0 ~vgs:0.2 ~vsb:0.0);
  (* body effect raises the threshold *)
  let vt_b = Device.Alpha_power.threshold ap ~vsb:0.4 in
  Alcotest.(check bool) "alpha body effect" true
    (vt_b > ap.Device.Alpha_power.vt0);
  (* delay decreases with wl *)
  let d1 = Device.Alpha_power.inverter_delay ap ~wl:1.0 ~cl:50e-15 ~vdd:1.2 in
  let d2 = Device.Alpha_power.inverter_delay ap ~wl:2.0 ~cl:50e-15 ~vdd:1.2 in
  Alcotest.(check bool) "delay halves with wl" true
    (Float.abs ((d1 /. d2) -. 2.0) < 1e-6);
  let ds = Device.Alpha_power.sakurai_delay ap ~wl:1.0 ~cl:50e-15 ~vdd:1.2 in
  Alcotest.(check bool) "sakurai delay finite positive" true
    (ds > 0.0 && Float.is_finite ds);
  Alcotest.check_raises "alpha out of range"
    (Invalid_argument "Alpha_power.of_level1: alpha must be in (1, 2]")
    (fun () -> ignore (Device.Alpha_power.of_level1 nmos ~alpha:2.5))

let test_leakage () =
  let i_low = Device.Leakage.off_current nmos ~wl:10.0 ~vdd:1.2 in
  let i_high = Device.Leakage.off_current high_vt ~wl:10.0 ~vdd:1.2 in
  Alcotest.(check bool) "leakage positive" true (i_low > 0.0);
  Alcotest.(check bool) "high-vt leaks orders less" true
    (i_high < i_low /. 100.0);
  let conv, mt =
    Device.Leakage.standby_comparison ~low_vt:nmos ~high_vt
      ~total_width_wl:100.0 ~sleep_wl:10.0 ~vdd:1.2
  in
  Alcotest.(check bool) "mtcmos standby much lower" true (mt < conv /. 50.0);
  Alcotest.(check bool) "standby currents positive" true
    (mt > 0.0 && conv > 0.0)

let test_sleep () =
  let s = Device.Sleep.make high_vt ~wl:10.0 ~vdd:1.2 in
  let r = Device.Sleep.effective_resistance s in
  Alcotest.(check bool) "resistance positive" true (r > 0.0);
  (* bigger device, lower resistance *)
  let s2 = Device.Sleep.make high_vt ~wl:20.0 ~vdd:1.2 in
  Alcotest.(check (float 1e-9)) "resistance halves"
    (r /. 2.0)
    (Device.Sleep.effective_resistance s2);
  (* i/v roundtrip in the linear region *)
  let i = Device.Sleep.current_at_vds s 0.02 in
  Alcotest.(check (float 1e-6)) "vds roundtrip" 0.02
    (Device.Sleep.vds_at_current s i);
  (* linear approximation holds at small vds *)
  Alcotest.(check bool) "ohmic approx" true
    (Float.abs ((0.02 /. i) -. r) /. r < 0.05);
  (* saturated when asked for more than the device can carry *)
  let i_sat =
    Device.Mosfet.saturation_current high_vt ~wl:10.0 ~vgs:1.2 ~vbs:0.0
  in
  Alcotest.(check (float 1e-12)) "starved returns vdd" 1.2
    (Device.Sleep.vds_at_current s (2.0 *. i_sat));
  (* sizing from a resistance target *)
  let wl = Device.Sleep.wl_for_resistance high_vt ~vdd:1.2 ~r in
  Alcotest.(check (float 1e-6)) "wl_for_resistance inverts" 10.0 wl;
  Alcotest.(check bool) "area grows with wl" true
    (Device.Sleep.area_cost s2 ~lmin:0.7e-6 > Device.Sleep.area_cost s ~lmin:0.7e-6);
  Alcotest.(check bool) "switching energy grows with wl" true
    (Device.Sleep.switching_energy s2 ~cg_per_wl:1e-15
     > Device.Sleep.switching_energy s ~cg_per_wl:1e-15);
  Alcotest.check_raises "cannot turn on"
    (Invalid_argument "Sleep.make: sleep device cannot turn on at this vdd")
    (fun () -> ignore (Device.Sleep.make high_vt ~wl:1.0 ~vdd:0.5))

let test_tech_cards () =
  Alcotest.(check (float 1e-9)) "0.7um vdd" 1.2 tech.Device.Tech.vdd;
  Alcotest.(check (float 1e-9)) "0.7um vtn" 0.35
    tech.Device.Tech.nmos.Device.Mosfet.vt0;
  Alcotest.(check (float 1e-9)) "0.7um vt_high" 0.75
    tech.Device.Tech.sleep_nmos.Device.Mosfet.vt0;
  let t3 = Device.Tech.mtcmos_03um in
  Alcotest.(check (float 1e-9)) "0.3um vdd" 1.0 t3.Device.Tech.vdd;
  Alcotest.(check (float 1e-9)) "0.3um vtn" 0.2
    t3.Device.Tech.nmos.Device.Mosfet.vt0;
  Alcotest.(check (float 1e-9)) "0.3um vt_high" 0.7
    t3.Device.Tech.sleep_nmos.Device.Mosfet.vt0;
  let t18 = Device.Tech.mtcmos_018um in
  Alcotest.(check (float 1e-9)) "0.18um vdd" 0.9 t18.Device.Tech.vdd;
  Alcotest.(check bool) "0.18um sleep overdrive shrinks with scaling" true
    (t18.Device.Tech.vdd -. t18.Device.Tech.sleep_nmos.Device.Mosfet.vt0
     < t3.Device.Tech.vdd -. t3.Device.Tech.sleep_nmos.Device.Mosfet.vt0);
  let lowered = Device.Tech.with_vdd tech 0.9 in
  Alcotest.(check (float 1e-9)) "with_vdd" 0.9 lowered.Device.Tech.vdd;
  let shifted = Device.Tech.with_vt_shift tech 0.1 in
  Alcotest.(check (float 1e-9)) "with_vt_shift" 0.45
    shifted.Device.Tech.nmos.Device.Mosfet.vt0;
  let re_alpha = Device.Tech.with_alpha tech 1.5 in
  Alcotest.(check (float 1e-9)) "with_alpha" 1.5 re_alpha.Device.Tech.alpha

let prop_monotone_in_vgs =
  QCheck.Test.make ~count:200 ~name:"mosfet: ids monotone in vgs"
    QCheck.(pair (float_range 0.0 1.1) (float_range 0.0 1.2))
    (fun (vgs, vds) ->
      let i1 = Device.Mosfet.ids nmos ~wl:1.0 (bias vgs vds 0.0) in
      let i2 = Device.Mosfet.ids nmos ~wl:1.0 (bias (vgs +. 0.1) vds 0.0) in
      i2 >= i1 -. 1e-15)

let prop_monotone_in_vds =
  QCheck.Test.make ~count:200 ~name:"mosfet: ids monotone in vds >= 0"
    QCheck.(pair (float_range 0.4 1.2) (float_range 0.0 1.0))
    (fun (vgs, vds) ->
      let i1 = Device.Mosfet.ids nmos ~wl:1.0 (bias vgs vds 0.0) in
      let i2 = Device.Mosfet.ids nmos ~wl:1.0 (bias vgs (vds +. 0.2) 0.0) in
      i2 >= i1 -. 1e-15)

let prop_gm_matches_fd =
  QCheck.Test.make ~count:200 ~name:"mosfet: gm matches finite difference"
    QCheck.(pair (float_range 0.5 1.2) (float_range 0.05 1.2))
    (fun (vgs, vds) ->
      (* keep away from the region boundary where gm jumps *)
      let vov = vgs -. nmos.Device.Mosfet.vt0 in
      QCheck.assume (Float.abs (vds -. vov) > 0.02);
      let h = 1e-6 in
      let op = Device.Mosfet.eval nmos ~wl:1.0 (bias vgs vds 0.0) in
      let ip = Device.Mosfet.ids nmos ~wl:1.0 (bias (vgs +. h) vds 0.0) in
      let im = Device.Mosfet.ids nmos ~wl:1.0 (bias (vgs -. h) vds 0.0) in
      let fd = (ip -. im) /. (2.0 *. h) in
      Float.abs (op.Device.Mosfet.gm -. fd)
      <= 1e-3 *. (Float.abs fd +. 1e-9))

let suite =
  [ Alcotest.test_case "operating regions" `Quick test_regions;
    Alcotest.test_case "region continuity" `Quick test_region_continuity;
    Alcotest.test_case "reverse symmetry" `Quick test_reverse_symmetry;
    Alcotest.test_case "body effect" `Quick test_body_effect;
    Alcotest.test_case "pmos" `Quick test_pmos;
    Alcotest.test_case "wl scaling" `Quick test_wl_scaling;
    Alcotest.test_case "alpha-power law" `Quick test_alpha_power;
    Alcotest.test_case "leakage" `Quick test_leakage;
    Alcotest.test_case "sleep transistor" `Quick test_sleep;
    Alcotest.test_case "technology cards" `Quick test_tech_cards;
    QCheck_alcotest.to_alcotest prop_monotone_in_vgs;
    QCheck_alcotest.to_alcotest prop_monotone_in_vds;
    QCheck_alcotest.to_alcotest prop_gm_matches_fd ]
