(* Eval suite: key framing, LRU bounds, save/load persistence, and the
   headline invariant — caching is invisible: cache-on, cache-off, cold,
   warm, and every jobs count produce bit-identical measurements and
   identical resilience totals. *)

module E = Eval
module K = Eval.Key
module C = Eval.Cache

let tech = Fixtures.tech

let bits f = Int64.bits_of_float f

let check_float_bits msg a b =
  Alcotest.(check int64) msg (bits a) (bits b)

(* ---- Key: framing and exactness ----------------------------------------- *)

let test_key_framing () =
  let digest_of parts =
    let k = K.create () in
    List.iter (K.string k) parts;
    K.digest_hex k
  in
  Alcotest.(check bool)
    "[ab;c] <> [a;bc]" false
    (digest_of [ "ab"; "c" ] = digest_of [ "a"; "bc" ]);
  Alcotest.(check bool)
    "[ab] <> [a;b]" false
    (digest_of [ "ab" ] = digest_of [ "a"; "b" ]);
  Alcotest.(check string)
    "deterministic" (digest_of [ "x"; "y" ]) (digest_of [ "x"; "y" ])

let test_key_float_exact () =
  let digest_of f =
    let k = K.create () in
    K.float k f;
    K.digest_hex k
  in
  Alcotest.(check bool)
    "0. <> -0." false
    (digest_of 0.0 = digest_of (-0.0));
  Alcotest.(check bool)
    "nan has a stable digest" true
    (digest_of Float.nan = digest_of Float.nan);
  Alcotest.(check bool)
    "adjacent representable floats differ" false
    (digest_of 1.0 = digest_of (Float.succ 1.0))

(* distinct evaluation points must get distinct digests: sweep a corpus
   of circuits / techs / sleep sizes / configs / vectors and check no
   two keys collide *)
let test_digest_corpus_distinct () =
  let circuits =
    [ Fixtures.chain_circuit 4;
      Fixtures.chain_circuit 5;
      (Fixtures.chain ~tech:Fixtures.tech03 4)
        .Circuits.Chain.circuit;
      (Fixtures.tree ~stages:2 ~fanout:2 ())
        .Circuits.Inverter_tree.circuit;
      (Fixtures.adder 2).Circuits.Ripple_adder.circuit
    ]
  in
  let sleeps =
    [ Mtcmos.Breakpoint_sim.Cmos;
      Mtcmos.Breakpoint_sim.Resistor 100.0;
      Mtcmos.Breakpoint_sim.Resistor 200.0;
      Mtcmos.Breakpoint_sim.Sleep_fet
        (Device.Sleep.make tech.Device.Tech.sleep_nmos ~wl:5.0 ~vdd:1.2);
      Mtcmos.Breakpoint_sim.Sleep_fet
        (Device.Sleep.make tech.Device.Tech.sleep_nmos ~wl:10.0 ~vdd:1.2)
    ]
  in
  let vectors = [ ([ (1, 0) ], [ (1, 1) ]); ([ (1, 1) ], [ (1, 0) ]) ] in
  let keys = Hashtbl.create 64 in
  let add what key =
    match key with
    | None -> Alcotest.failf "%s: expected a digestible config" what
    | Some key ->
      (match Hashtbl.find_opt keys key with
       | Some other -> Alcotest.failf "collision: %s vs %s" what other
       | None -> Hashtbl.add keys key what)
  in
  List.iteri
    (fun ci c ->
      List.iteri
        (fun si sleep ->
          List.iteri
            (fun vi (before, after) ->
              List.iter
                (fun body_effect ->
                  let config =
                    { Mtcmos.Breakpoint_sim.default_config with
                      Mtcmos.Breakpoint_sim.sleep; body_effect }
                  in
                  let what =
                    Printf.sprintf "c%d/s%d/v%d/be%b" ci si vi body_effect
                  in
                  add what
                    (Option.map
                       (fun cfg ->
                         Mtcmos.Cached.digest ~tag:"t"
                           [ Mtcmos.Cached.circuit_key c; cfg;
                             Mtcmos.Cached.vector_key ~before ~after ])
                       (Mtcmos.Cached.bp_config_key config)))
                [ true; false ])
            vectors)
        sleeps)
    circuits;
  Alcotest.(check int)
    "corpus size" (5 * 5 * 2 * 2) (Hashtbl.length keys)

(* ---- Cache: LRU bound, counters, memo ------------------------------------ *)

let entry fs = { C.floats = fs; stats = None }

let test_lru_eviction () =
  let c = C.create ~max_entries:3 () in
  C.store c "a" (entry [| 1.0 |]);
  C.store c "b" (entry [| 2.0 |]);
  C.store c "c" (entry [| 3.0 |]);
  (* touch "a" so "b" is now the least recently used *)
  Alcotest.(check bool) "a hits" true (C.find c "a" <> None);
  C.store c "d" (entry [| 4.0 |]);
  Alcotest.(check bool) "b evicted" true (C.find c "b" = None);
  Alcotest.(check bool) "a survives" true (C.find c "a" <> None);
  Alcotest.(check bool) "c survives" true (C.find c "c" <> None);
  Alcotest.(check bool) "d present" true (C.find c "d" <> None);
  let k = C.counters c in
  Alcotest.(check int) "entries bounded" 3 k.C.entries;
  Alcotest.(check int) "one eviction" 1 k.C.evictions;
  Alcotest.(check int) "hits" 4 k.C.hits;
  Alcotest.(check int) "misses" 1 k.C.misses;
  Alcotest.(check bool) "bytes positive" true (k.C.bytes > 0)

let test_store_replaces () =
  let c = C.create ~max_entries:2 () in
  C.store c "k" (entry [| 1.0 |]);
  C.store c "k" (entry [| 2.0 |]);
  (match C.find c "k" with
   | Some e -> Alcotest.(check (float 0.0)) "replaced" 2.0 e.C.floats.(0)
   | None -> Alcotest.fail "entry vanished");
  Alcotest.(check int) "no eviction on replace" 0 (C.counters c).C.evictions;
  Alcotest.(check int) "one entry" 1 (C.counters c).C.entries

let test_memo_protocol () =
  let c = C.create () in
  let runs = ref 0 in
  let compute _stats =
    incr runs;
    (3.5, 7.25)
  in
  let call () =
    C.memo ~cache:c
      ~key:(lazy "memo-test")
      ~arity:2
      ~to_floats:(fun (a, b) -> [| a; b |])
      ~of_floats:(fun fs -> (fs.(0), fs.(1)))
      compute
  in
  let cold = call () in
  let warm = call () in
  Alcotest.(check int) "computed once" 1 !runs;
  Alcotest.(check (pair (float 0.0) (float 0.0))) "hit = miss" cold warm;
  (* an arity mismatch (stale file) is a miss, recomputed and replaced *)
  C.store c "memo-test" (entry [| 9.9 |]);
  let again = call () in
  Alcotest.(check int) "recomputed on arity mismatch" 2 !runs;
  Alcotest.(check (pair (float 0.0) (float 0.0))) "value restored" cold again

let test_memo_replays_stats () =
  let c = C.create () in
  let telemetry =
    { Spice.Diag.newton_iterations = 12;
      factorizations = 4;
      step_rejections = 0;
      gmin_rounds = 0;
      source_steps = 0;
      recoveries = [];
      wall_s = 0.1 }
  in
  let failure =
    { Spice.Diag.analysis = Spice.Diag.Transient;
      kind = Spice.Diag.Newton_divergence;
      time = 1e-9;
      last_good_time = 0.5e-9;
      worst_residual_node = None;
      worst_residual = 0.1;
      newton_iterations = 40;
      recovery_attempts = [ "gmin-ramp" ];
      message = "test failure" }
  in
  let compute stats =
    (match stats with
     | Some s ->
       Mtcmos.Resilience.record_success ~stats:s telemetry;
       Mtcmos.Resilience.record_skip ~stats:s
         ~kind:Mtcmos.Resilience.Estimated ~label:"vec0" failure
     | None -> ());
    42.0
  in
  let call () =
    let stats = Mtcmos.Resilience.create () in
    let v =
      C.memo ~cache:c ~stats
        ~key:(lazy "stats-test")
        ~arity:1
        ~to_floats:(fun x -> [| x |])
        ~of_floats:(fun fs -> fs.(0))
        compute
    in
    (v, stats)
  in
  let v1, s1 = call () in
  let v2, s2 = call () in
  Alcotest.(check (float 0.0)) "same value" v1 v2;
  Alcotest.(check int) "hit counted" 1 (C.counters c).C.hits;
  List.iter
    (fun (what, f) ->
      Alcotest.(check int) (what ^ " replayed") (f s1) (f s2))
    [ ("attempted", fun s -> s.Mtcmos.Resilience.attempted);
      ("direct", fun s -> s.Mtcmos.Resilience.direct);
      ("skipped", fun s -> s.Mtcmos.Resilience.skipped);
      ("fallback", fun s -> s.Mtcmos.Resilience.fallback) ];
  Alcotest.(check (list (pair string bool)))
    "skip labels replayed"
    (List.map
       (fun (l, k, _) -> (l, k = Mtcmos.Resilience.Estimated))
       s1.Mtcmos.Resilience.skips)
    (List.map
       (fun (l, k, _) -> (l, k = Mtcmos.Resilience.Estimated))
       s2.Mtcmos.Resilience.skips)

(* ---- save / load ---------------------------------------------------------- *)

let test_save_load_round_trip () =
  let file = Filename.temp_file "mtsize-cache" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let c = C.create ~max_entries:8 () in
      let weird = [| Float.nan; -0.0; 1e-300; Float.max_float; 0.5 |] in
      C.store c "plain" (entry [| 1.0; 2.0 |]);
      C.store c "weird" (entry weird);
      C.store c "empty-key-\x00-binary" (entry [| 3.0 |]);
      C.save c file;
      let c' = C.load file in
      Alcotest.(check int) "entries survive" 3 (C.counters c').C.entries;
      Alcotest.(check int) "counters reset" 0 (C.counters c').C.hits;
      (match C.find c' "weird" with
       | None -> Alcotest.fail "weird entry lost"
       | Some e ->
         Alcotest.(check int) "arity" 5 (Array.length e.C.floats);
         Array.iteri
           (fun i f ->
             check_float_bits (Printf.sprintf "float %d bits" i) weird.(i) f)
           e.C.floats);
      (match C.find c' "plain" with
       | Some e ->
         Alcotest.(check (float 0.0)) "plain value" 2.0 e.C.floats.(1)
       | None -> Alcotest.fail "plain entry lost"))

let test_save_load_preserves_recency () =
  let file = Filename.temp_file "mtsize-cache" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let c = C.create ~max_entries:4 () in
      C.store c "old" (entry [| 1.0 |]);
      C.store c "mid" (entry [| 2.0 |]);
      C.store c "new" (entry [| 3.0 |]);
      ignore (C.find c "old");
      (* recency now: mid < new < old *)
      C.save c file;
      (* reload into a table that only holds two entries: the LRU entry
         ("mid") must be the one that falls off *)
      let c' = C.load ~max_entries:2 file in
      Alcotest.(check bool) "LRU dropped on shrink" true (C.find c' "mid" = None);
      Alcotest.(check bool) "MRU kept" true (C.find c' "old" <> None);
      Alcotest.(check bool) "2nd MRU kept" true (C.find c' "new" <> None))

(* ---- Cache: lock-striped shards ------------------------------------------ *)

(* a deterministic op sequence (digest-like keys) replayed at several
   stripe counts: the values and the merged counters must not move *)
let shard_workload c =
  let keys =
    List.init 64 (fun i -> Digest.string (Printf.sprintf "shard-key-%d" i))
  in
  List.iteri (fun i k -> C.store c k (entry [| float_of_int i |])) keys;
  (* second pass: every lookup hits, wherever the stripe put it *)
  List.iteri
    (fun i k ->
      match C.find c k with
      | Some e ->
        Alcotest.(check (float 0.0))
          (Printf.sprintf "value %d" i)
          (float_of_int i) e.C.floats.(0)
      | None -> Alcotest.failf "key %d lost by sharding" i)
    keys;
  ignore (C.find c "never-stored");
  C.counters c

let test_shard_count_invariance () =
  let reference = shard_workload (C.create ()) in
  List.iter
    (fun n ->
      let c = C.create ~shards:n () in
      Alcotest.(check int) "shards recorded" n (C.shards c);
      let k = shard_workload c in
      Alcotest.(check int)
        (Printf.sprintf "hits at %d shards" n)
        reference.C.hits k.C.hits;
      Alcotest.(check int)
        (Printf.sprintf "misses at %d shards" n)
        reference.C.misses k.C.misses;
      Alcotest.(check int)
        (Printf.sprintf "evictions at %d shards" n)
        reference.C.evictions k.C.evictions;
      Alcotest.(check int)
        (Printf.sprintf "entries at %d shards" n)
        reference.C.entries k.C.entries;
      Alcotest.(check int)
        (Printf.sprintf "bytes at %d shards" n)
        reference.C.bytes k.C.bytes)
    [ 2; 4; 16; 256 ]

let test_shard_save_load_cross_count () =
  let file = Filename.temp_file "mtsize-cache" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let c = C.create ~shards:16 () in
      ignore (shard_workload c);
      C.save c file;
      (* reload at a different stripe count: entries re-route by digest *)
      let c' = C.load ~shards:4 file in
      Alcotest.(check int) "population survives re-striping"
        (C.counters c).C.entries (C.counters c').C.entries;
      List.iteri
        (fun i k ->
          match C.find c' k with
          | Some e ->
            Alcotest.(check (float 0.0))
              (Printf.sprintf "re-striped value %d" i)
              (float_of_int i) e.C.floats.(0)
          | None -> Alcotest.failf "key %d lost by re-striping" i)
        (List.init 64 (fun i -> Digest.string (Printf.sprintf "shard-key-%d" i))))

let test_shard_concurrent_domains () =
  (* 4 domains hammer one 16-shard cache; every value read back must be
     exactly what some store wrote for that key (values never tear) *)
  let c = C.create ~shards:16 () in
  let n = 256 in
  let key i = Digest.string (Printf.sprintf "conc-%d" (i mod 64)) in
  let worker _ =
    for i = 0 to n - 1 do
      let k = key i in
      (match C.find c k with
       | Some e ->
         let v = e.C.floats.(0) in
         if Float.rem v 1.0 <> 0.0 then
           Alcotest.failf "torn value %f" v
       | None -> ());
      C.store c k (entry [| float_of_int (i mod 64) |])
    done;
    true
  in
  let domains = List.init 4 (fun d -> Domain.spawn (fun () -> worker d)) in
  List.iter (fun d -> ignore (Domain.join d)) domains;
  (* afterwards every key holds its (unique) final value *)
  for i = 0 to 63 do
    match C.find c (key i) with
    | Some e ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "final value %d" i)
        (float_of_int i) e.C.floats.(0)
    | None -> Alcotest.failf "key %d missing after concurrent run" i
  done;
  let k = C.counters c in
  Alcotest.(check int) "population is the key set" 64 k.C.entries;
  Alcotest.(check int)
    "every lookup counted" ((4 * n) + 64)
    (k.C.hits + k.C.misses)

let test_shard_bad_args () =
  (match C.create ~shards:0 () with
   | _ -> Alcotest.fail "shards=0 accepted"
   | exception Invalid_argument _ -> ());
  match C.create ~shards:257 () with
  | _ -> Alcotest.fail "shards=257 accepted"
  | exception Invalid_argument _ -> ()

let test_load_rejects_garbage () =
  let file = Filename.temp_file "mtsize-cache" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "not a cache file\n";
      close_out oc;
      match C.load file with
      | _ -> Alcotest.fail "garbage accepted"
      | exception Failure _ -> ())

(* ---- Ctx ------------------------------------------------------------------ *)

let test_ctx_builders () =
  let d = E.Ctx.default in
  Alcotest.(check bool) "default engine" true (d.E.Ctx.engine = E.Breakpoint);
  Alcotest.(check bool) "default body effect" true d.E.Ctx.body_effect;
  Alcotest.(check int) "default jobs" 1 d.E.Ctx.jobs;
  Alcotest.(check bool) "no cache" true (d.E.Ctx.cache = None);
  Alcotest.(check bool) "no stats" true (d.E.Ctx.stats = None);
  let c = C.create () in
  let t =
    d
    |> E.Ctx.with_engine E.Spice_level
    |> E.Ctx.with_jobs 4
    |> E.Ctx.with_cache c
  in
  Alcotest.(check bool) "engine set" true (t.E.Ctx.engine = E.Spice_level);
  Alcotest.(check int) "jobs set" 4 t.E.Ctx.jobs;
  Alcotest.(check bool) "cache set" true (t.E.Ctx.cache <> None);
  let t' = E.Ctx.override ~jobs:2 t in
  Alcotest.(check int) "override picks new" 2 t'.E.Ctx.jobs;
  Alcotest.(check bool)
    "override keeps others" true
    (t'.E.Ctx.engine = E.Spice_level && t'.E.Ctx.cache <> None);
  Alcotest.(check bool)
    "without_cache" true
    ((E.Ctx.without_cache t).E.Ctx.cache = None)

let test_engine_names () =
  Alcotest.(check string) "bp" "bp" (E.Engine.to_string E.Breakpoint);
  Alcotest.(check string) "spice" "spice" (E.Engine.to_string E.Spice_level);
  List.iter
    (fun (s, e) ->
      match E.Engine.of_string s with
      | Ok e' -> Alcotest.(check bool) s true (e = e')
      | Error m -> Alcotest.fail m)
    [ ("bp", E.Breakpoint); ("breakpoint", E.Breakpoint);
      ("SPICE", E.Spice_level) ];
  Alcotest.(check bool)
    "bogus rejected" true
    (Result.is_error (E.Engine.of_string "bogus"))

(* ---- caching is invisible ------------------------------------------------- *)

let chain n = (Fixtures.chain n).Circuits.Chain.circuit

let resilience_totals (s : Mtcmos.Resilience.t) =
  ( s.Mtcmos.Resilience.attempted,
    s.Mtcmos.Resilience.direct,
    s.Mtcmos.Resilience.recovered,
    s.Mtcmos.Resilience.skipped,
    s.Mtcmos.Resilience.fallback,
    s.Mtcmos.Resilience.scored_zero,
    s.Mtcmos.Resilience.strategies,
    List.map (fun (l, n, _) -> (l, n)) s.Mtcmos.Resilience.skips )

(* a spice sweep under a strangled Newton budget exercises recovery and
   fallback paths; cold, warm, and cache-off runs must agree on both the
   measurements and the resilience totals *)
let test_spice_sweep_cold_warm_off () =
  let c = chain 4 in
  let vec = ([ (1, 0) ], [ (1, 1) ]) in
  let wls = [ 2.0; 10.0 ] in
  let policy = Spice.Recover.with_newton_budget 4 Spice.Recover.default in
  let run ctx =
    let stats = Mtcmos.Resilience.create () in
    let ctx = E.Ctx.with_stats stats ctx in
    let ms = Mtcmos.Sizing.sweep ~ctx c ~vectors:[ vec ] ~wls in
    (ms, resilience_totals stats)
  in
  let base =
    E.Ctx.default
    |> E.Ctx.with_engine E.Spice_level
    |> E.Ctx.with_policy policy
  in
  let cache = C.create () in
  let off = run base in
  let cold = run (E.Ctx.with_cache cache base) in
  let warm = run (E.Ctx.with_cache cache base) in
  Alcotest.(check bool) "warm run hit" true ((C.counters cache).C.hits > 0);
  Alcotest.(check bool) "cold = off" true (compare cold off = 0);
  Alcotest.(check bool) "warm = cold" true (compare warm cold = 0);
  (* and the engine really did have to recover under this budget,
     otherwise the replay equality above is vacuous *)
  let _, (attempted, direct, _, _, _, _, _, _) = (fst off, snd off) in
  Alcotest.(check bool) "budget bit" true (attempted > 0 && direct < attempted)

(* hill_climb threads the cache through Par.Pool workers: the winning
   vector must not depend on cache or jobs *)
let test_search_cache_and_jobs_invariant () =
  let c = (Fixtures.adder 2).Circuits.Ripple_adder.circuit in
  let sleep =
    Mtcmos.Breakpoint_sim.Sleep_fet
      (Device.Sleep.make tech.Device.Tech.sleep_nmos ~wl:8.0 ~vdd:1.2)
  in
  let run ctx =
    Mtcmos.Search.hill_climb ~ctx ~restarts:3 ~seed:7 c ~sleep
      ~widths:[ 2; 2 ] Mtcmos.Search.Max_degradation
  in
  let reference = run E.Ctx.default in
  List.iter
    (fun jobs ->
      let cache = C.create () in
      let ctx = E.Ctx.default |> E.Ctx.with_jobs jobs |> E.Ctx.with_cache cache in
      let o = run ctx in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d cached = reference" jobs)
        true
        (o.Mtcmos.Search.pair = reference.Mtcmos.Search.pair
        && o.Mtcmos.Search.score = reference.Mtcmos.Search.score);
      (* same ctx again: warm, and still identical *)
      let o' = run ctx in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d warm = reference" jobs)
        true
        (o'.Mtcmos.Search.pair = reference.Mtcmos.Search.pair
        && o'.Mtcmos.Search.score = reference.Mtcmos.Search.score))
    [ 1; 2; 3 ]

(* QCheck: for random vector sets / sizes / jobs, a bp sweep with the
   cache (including a warm second pass) equals the uncached sweep
   bit-for-bit *)
let prop_cache_invisible =
  QCheck.Test.make ~count:30 ~name:"eval: cache-on = cache-off (bp sweep)"
    QCheck.(triple (int_bound 1000) (int_range 1 3) (int_range 1 4))
    (fun (seed, jobs, nvec) ->
      let c = (Fixtures.adder 2).Circuits.Ripple_adder.circuit in
      let st = Random.State.make [| 3571; seed |] in
      let vec () =
        let draw () = [ (2, Random.State.int st 4); (2, Random.State.int st 4) ] in
        (draw (), draw ())
      in
      let vectors = List.init nvec (fun _ -> vec ()) in
      let wls = [ 2.0 +. float_of_int (Random.State.int st 8); 20.0 ] in
      let run ctx = Mtcmos.Sizing.sweep ~ctx c ~vectors ~wls in
      let off = run (E.Ctx.with_jobs jobs E.Ctx.default) in
      let cache = C.create () in
      let ctx = E.Ctx.default |> E.Ctx.with_jobs jobs |> E.Ctx.with_cache cache in
      let cold = run ctx in
      let warm = run ctx in
      (* compare instead of (=): a no-transition vector can leave NaN in
         a measurement, and NaN <> NaN under (=) even when bit-identical *)
      compare cold off = 0 && compare warm off = 0)

let to_alcotest = QCheck_alcotest.to_alcotest

let suite =
  [ Alcotest.test_case "key framing is unambiguous" `Quick test_key_framing;
    Alcotest.test_case "key floats are exact" `Quick test_key_float_exact;
    Alcotest.test_case "digest corpus has no collisions" `Quick
      test_digest_corpus_distinct;
    Alcotest.test_case "LRU eviction and counters" `Quick test_lru_eviction;
    Alcotest.test_case "store replaces in place" `Quick test_store_replaces;
    Alcotest.test_case "memo: hit = miss, arity guards" `Quick
      test_memo_protocol;
    Alcotest.test_case "memo replays resilience deltas" `Quick
      test_memo_replays_stats;
    Alcotest.test_case "save/load round-trips exact floats" `Quick
      test_save_load_round_trip;
    Alcotest.test_case "save/load preserves recency" `Quick
      test_save_load_preserves_recency;
    Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
    Alcotest.test_case "shard counters are stripe-count-invariant" `Quick
      test_shard_count_invariance;
    Alcotest.test_case "save/load re-stripes across shard counts" `Quick
      test_shard_save_load_cross_count;
    Alcotest.test_case "sharded cache survives concurrent domains" `Quick
      test_shard_concurrent_domains;
    Alcotest.test_case "shard bounds rejected" `Quick test_shard_bad_args;
    Alcotest.test_case "ctx builders and override" `Quick test_ctx_builders;
    Alcotest.test_case "engine names" `Quick test_engine_names;
    Alcotest.test_case "spice sweep: cold = warm = cache-off" `Slow
      test_spice_sweep_cold_warm_off;
    Alcotest.test_case "search invariant under cache and jobs" `Slow
      test_search_cache_and_jobs_invariant;
    to_alcotest prop_cache_invisible ]
