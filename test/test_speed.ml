(* Fast transient path: RC-chain reduction, quiescent-device bypass and
   LTE stepping, behind the Engine.Opts record.

   The guarantees pinned here:
   - [`Reduce] is exact on a series-RC ladder: the reduced system is
     smaller, yet every waveform — anchors and eliminated interiors
     alike — matches the unreduced engine to solver rounding, for both
     integration methods, and DC back-substitution matches the
     closed-form divider (including a ground-anchored chain).
   - [`Off] through the new Opts record is bit-identical to the legacy
     optional-argument wrappers, and bit-identical across jobs {1,4} x
     cache {off,on} through the Sizing front end.
   - [`Reduce_bypass] stays within its calibrated tolerance band at
     every recorded output and its critical delays track [`Off].
   - the default transient step is derived from the fastest explicit RC
     time constant instead of the historical flat [t_stop / 2000]. *)

module T = Netlist.Transistor
module E = Spice.Engine
module SR = Mtcmos.Spice_ref

let tech = Fixtures.tech

(* vsrc - R - n0 - R - n1 - ... - n_{k-1}, a grounded cap on every
   internal node.  Nodes n0 .. n_{k-2} are chain-eligible (exactly two
   resistor neighbours, caps to ground only); the far end keeps a
   single resistor, so it anchors the chain. *)
let ladder ?(segments = 12) ?(r = 1000.0) ?(c = 1e-13) () =
  let b = T.builder () in
  let src = T.node ~name:"src" b in
  T.add b
    (T.Vsrc
       { pos = src; neg = T.ground;
         wave = Phys.Pwl.create [ (0.0, 0.0); (10.0 *. r *. c, 1.0) ] });
  let nodes =
    Array.init segments (fun i -> T.node ~name:(Printf.sprintf "n%d" i) b)
  in
  Array.iteri
    (fun i n ->
      let prev = if i = 0 then src else nodes.(i - 1) in
      T.add b (T.Res { pos = prev; neg = n; r });
      T.add b (T.Cap { pos = n; neg = T.ground; c }))
    nodes;
  (T.freeze b, src, nodes)

let prep netlist fast = E.prepare ~opts:E.Opts.(default |> with_fast fast) netlist

let test_reduce_shrinks_system () =
  let netlist, _, nodes = ladder () in
  let off = prep netlist `Off and red = prep netlist `Reduce in
  let n_off = (E.system off).Spice.Mna.n_unknowns in
  let n_red = (E.system red).Spice.Mna.n_unknowns in
  Alcotest.(check int)
    "interior nodes eliminated"
    (Array.length nodes - 1)
    (Spice.Mna.reduced_nodes (E.system red));
  Alcotest.(check bool) "system is smaller" true (n_red < n_off)

let test_transient_interiors_exact () =
  let netlist, src, nodes = ladder () in
  let tau = 1000.0 *. 1e-13 in
  let t_stop = 40.0 *. tau and dt = tau /. 10.0 in
  List.iter
    (fun integration ->
      let run fast =
        let eng = prep netlist fast in
        let res =
          match E.transient_r ~integration ~dt eng ~t_stop with
          | Ok r -> r
          | Error f -> Alcotest.failf "transient: %s" (Spice.Diag.failure_to_string f)
        in
        (eng, res)
      in
      let _, res_off = run `Off and _, res_red = run `Reduce in
      Array.iter
        (fun node ->
          let w0 = E.waveform res_off node in
          let w1 = E.waveform res_red node in
          Array.iter
            (fun (t, v0) ->
              let v1 = Phys.Pwl.value_at w1 t in
              if Float.abs (v1 -. v0) > 1e-9 then
                Alcotest.failf
                  "node %d at t=%.3e: reduced %.12f vs full %.12f" node t
                  v1 v0)
            (Phys.Pwl.sample w0 ~t0:0.0 ~t1:t_stop ~n:64))
        (Array.append [| src |] nodes))
    [ E.Backward_euler; E.Trapezoidal ]

(* 2 V across five equal resistors in series, middle nodes carrying
   grounded caps: a divider whose chain anchors at the source on one
   side and at ground on the other.  DC back-substitution must recover
   the closed-form taps. *)
let test_dc_ground_anchored_chain () =
  let b = T.builder () in
  let top = T.node ~name:"top" b in
  T.add b
    (T.Vsrc { pos = top; neg = T.ground; wave = Phys.Pwl.constant 2.0 });
  let taps = Array.init 4 (fun i -> T.node ~name:(Printf.sprintf "t%d" i) b) in
  Array.iteri
    (fun i n ->
      let prev = if i = 0 then top else taps.(i - 1) in
      T.add b (T.Res { pos = prev; neg = n; r = 1000.0 });
      T.add b (T.Cap { pos = n; neg = T.ground; c = 1e-13 }))
    taps;
  T.add b (T.Res { pos = taps.(3); neg = T.ground; r = 1000.0 });
  let netlist = T.freeze b in
  let eng = prep netlist `Reduce in
  Alcotest.(check bool)
    "chain detected" true
    (Spice.Mna.reduced_nodes (E.system eng) > 0);
  let x = E.dc eng in
  Array.iteri
    (fun i n ->
      let expected = 2.0 *. float_of_int (4 - i) /. 5.0 in
      Alcotest.(check (float 1e-7))
        (Printf.sprintf "tap %d" i)
        expected (E.voltage eng x n))
    taps

let test_default_dt_from_tau () =
  let t_stop = 6e-9 in
  (* fast deck: the stiffest node sees two 1 kOhm resistors and 1 fF,
     tau = C / (2 g) = 0.5 ps, well under t_stop/2000 = 3 ps *)
  let fast_netlist, _, _ = ladder ~r:1000.0 ~c:1e-15 () in
  let eng = prep fast_netlist `Off in
  Alcotest.(check (float 1e-16))
    "fast RC refines the step" (0.25e-12)
    (E.default_dt eng ~t_stop);
  (* slow deck: tau = 100 ns, the historical default stands *)
  let slow_netlist, _, _ = ladder ~r:1e6 ~c:1e-13 () in
  let eng = prep slow_netlist `Off in
  Alcotest.(check (float 1e-16))
    "slow RC keeps t_stop/2000" (t_stop /. 2000.0)
    (E.default_dt eng ~t_stop);
  (* degenerate: the floor at t_stop/50000 *)
  let tiny_netlist, _, _ = ladder ~r:1.0 ~c:1e-18 () in
  let eng = prep tiny_netlist `Off in
  Alcotest.(check (float 1e-20))
    "floor at t_stop/50000" (t_stop /. 50000.0)
    (E.default_dt eng ~t_stop)

(* The legacy optional arguments are thin wrappers over Opts: same
   values, bit-identical trajectory. *)
let test_wrappers_bit_identical () =
  let netlist, _, _ = ladder () in
  let tau = 1e-10 in
  let eng = E.prepare netlist in
  let via_args =
    E.transient ~integration:E.Trapezoidal ~dt:(tau /. 20.0) eng
      ~t_stop:(20.0 *. tau)
  in
  let eng2 =
    E.prepare
      ~opts:
        E.Opts.(
          default
          |> with_integration E.Trapezoidal
          |> with_dt (tau /. 20.0))
      netlist
  in
  let via_opts =
    match E.transient_r eng2 ~t_stop:(20.0 *. tau) with
    | Ok r -> r
    | Error f -> Alcotest.failf "transient: %s" (Spice.Diag.failure_to_string f)
  in
  let xa = E.final_solution via_args and xo = E.final_solution via_opts in
  Alcotest.(check int) "same unknowns" (Array.length xa) (Array.length xo);
  Array.iteri
    (fun i v ->
      if not (Float.equal v xo.(i)) then
        Alcotest.failf "unknown %d: %h vs %h" i v xo.(i))
    xa;
  Alcotest.(check int) "same steps" (E.steps_taken via_args)
    (E.steps_taken via_opts);
  Alcotest.(check int) "same newton effort"
    (E.newton_iterations via_args)
    (E.newton_iterations via_opts)

(* [`Off] through the Sizing front end: bit-identical across worker
   counts and cache states (the cache key digests the fast mode, so an
   [`Off] entry can never serve a fast-mode query or vice versa). *)
let prop_off_jobs_cache_invariant =
  QCheck.Test.make ~count:4
    ~name:"speed: `Off sizing is jobs/cache-invariant (bit-identical)"
    QCheck.(int_bound 0xff)
    (fun bits ->
      let c = Fixtures.adder_circuit 2 in
      let vec =
        ( [ (2, bits land 3); (2, (bits lsr 2) land 3) ],
          [ (2, (bits lsr 4) land 3); (2, (bits lsr 6) land 3) ] )
      in
      let measure ~jobs ~cache =
        let ctx =
          Eval.Ctx.(
            default |> with_engine Eval.Spice_level |> with_jobs jobs)
        in
        let ctx =
          match cache with
          | None -> ctx
          | Some cache -> Eval.Ctx.with_cache cache ctx
        in
        Mtcmos.Sizing.delay_at ~ctx c ~vectors:[ vec ] ~wl:8.0
      in
      let base = measure ~jobs:1 ~cache:None in
      let shared = Eval.Cache.create () in
      let warm = measure ~jobs:1 ~cache:(Some shared) in
      let par = measure ~jobs:4 ~cache:None in
      let par_hit = measure ~jobs:4 ~cache:(Some shared) in
      (* structural compare, not (=): a vector whose outputs never
         switch yields delay 0 and a NaN degradation on every run *)
      compare base warm = 0 && compare base par = 0
      && compare base par_hit = 0)

(* [`Reduce_bypass] tolerance band, pinned at every recorded output of
   the expanded MOS netlists.  Calibration on the chain fixtures puts
   the worst node-voltage deviation well under the band; the delay
   check is relative with an absolute floor for near-zero delays. *)
let v_band = 0.06 (* volts, 5 % of the 1.2 V rail *)
let d_band_rel = 0.10
let d_band_abs = 20e-12

let prop_bypass_within_band =
  QCheck.Test.make ~count:6
    ~name:"speed: `Reduce_bypass within band at every recorded output"
    QCheck.(pair (int_range 2 5) bool)
    (fun (len, rising) ->
      let c = Fixtures.chain_circuit len in
      let before, after = if rising then Fixtures.bit_vec else
          (snd Fixtures.bit_vec, fst Fixtures.bit_vec)
      in
      let run fast =
        let config = { SR.default_config with SR.fast } in
        match SR.run_ints_r ~config c ~before ~after with
        | Ok r -> r
        | Error f ->
          QCheck.Test.fail_reportf "run (%s): %s"
            (E.Opts.fast_to_string fast)
            (Spice.Diag.failure_to_string f)
      in
      let off = run `Off and fb = run `Reduce_bypass in
      let t_stop = SR.default_config.SR.t_stop in
      Array.iter
        (fun net ->
          let w0 = SR.net_waveform off net in
          let w1 = SR.net_waveform fb net in
          Array.iter
            (fun (t, v0) ->
              let dv = Float.abs (Phys.Pwl.value_at w1 t -. v0) in
              if dv > v_band then
                QCheck.Test.fail_reportf
                  "net %d at t=%.3e: |dv| = %.4f > %.4f" net t dv v_band)
            (Phys.Pwl.sample w0 ~t0:0.0 ~t1:t_stop ~n:96))
        (Netlist.Circuit.outputs c);
      (match (SR.critical_delay off, SR.critical_delay fb) with
       | Some (_, d0), Some (_, d1) ->
         if Float.abs (d1 -. d0) > Float.max d_band_abs (d_band_rel *. d0)
         then
           QCheck.Test.fail_reportf "critical delay drifted: %.3e vs %.3e"
             d1 d0
       | None, None -> ()
       | Some (_, d0), None ->
         QCheck.Test.fail_reportf "fast path lost the transition (off %.3e)"
           d0
       | None, Some (_, d1) ->
         QCheck.Test.fail_reportf "fast path invented a transition (%.3e)"
           d1);
      true)

let seeded test =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 0xfa57 |])
    test

let suite =
  [ Alcotest.test_case "reduce shrinks the unknown vector" `Quick
      test_reduce_shrinks_system;
    Alcotest.test_case "chain interiors exact vs full engine" `Quick
      test_transient_interiors_exact;
    Alcotest.test_case "dc back-substitution (ground-anchored chain)"
      `Quick test_dc_ground_anchored_chain;
    Alcotest.test_case "default dt derives from fastest RC tau" `Quick
      test_default_dt_from_tau;
    Alcotest.test_case "legacy wrappers == Opts record (bit-identical)"
      `Quick test_wrappers_bit_identical;
    seeded prop_off_jobs_cache_invariant;
    seeded prop_bypass_within_band ]
