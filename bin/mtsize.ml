(* mtsize: the MTCMOS sleep-transistor sizing tool as a CLI.

   Subcommands:
     sweep         delay/degradation vs W/L for a circuit and vector set
     size          minimum W/L for a target degradation
     worst-vectors rank input transitions by MTCMOS susceptibility
     simulate      one transition in detail (waveform summary)
     compare       switch-level vs transistor-level on one transition
     estimate      the naive baselines (sum-of-widths, peak-current)
     run           a declarative batch of the above through one shared
                   evaluation context, with journaled resume *)

open Cmdliner

(* ---- shared argument plumbing ------------------------------------------- *)

(* Name resolution (tech cards, benchmark circuits, vectors, objectives)
   lives in Runner.Catalog so the batch job-file language and the CLI
   flags name things identically. *)
type bench_circuit = Runner.Catalog.bench_circuit = {
  name : string;
  circuit : Netlist.Circuit.t;
  widths : int list; (* input packing *)
}

let tech_term =
  let doc = "Technology card: 07um (1.2 V) or 03um (1.0 V)." in
  Arg.(value & opt string "07um" & info [ "t"; "tech" ] ~docv:"TECH" ~doc)

let circuit_term =
  let doc =
    "Benchmark circuit: tree, chain, adder$(i,N) (e.g. adder3), \
     mult$(i,N) (e.g. mult8), kogge$(i,N) (Kogge-Stone prefix adder), \
     random$(i,G) (seeded $(i,G)-gate random-logic cloud), or a \
     $(i,.net) netlist file (see Netlist.Parse for the language)."
  in
  Arg.(value & opt string "adder3" & info [ "c"; "circuit" ] ~docv:"CIRCUIT" ~doc)

let vectors_term =
  let doc =
    "Input transition \"v1,v2,..->w1,w2,..\" (one integer per input \
     group, little-endian).  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "v"; "vector" ] ~docv:"VEC" ~doc)

let setup tech_name circuit_name vector_strs =
  match Runner.Catalog.tech_of_name tech_name with
  | Error e -> Error e
  | Ok tech ->
    (match Runner.Catalog.circuit_of_name tech circuit_name with
     | Error e -> Error e
     | Ok bc ->
       (match Runner.Catalog.parse_vectors ~widths:bc.widths vector_strs with
        | Error e -> Error e
        | Ok vs -> Ok (tech, bc, vs)))

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("mtsize: " ^ e);
    exit 2

(* Solver-effort cap: small budgets deliberately force the engine's
   recovery ladder (or per-vector skips), which the resilience report
   then accounts for. *)
let newton_budget_term =
  let doc =
    "Cap the transistor-level engine's Newton iteration budget per \
     solve.  Small values force recovery strategies or per-vector \
     skips instead of aborting; the run ends with a resilience report. \
     0 (default) keeps the engine's own budgets."
  in
  Arg.(value & opt int 0 & info [ "newton-budget" ] ~docv:"N" ~doc)

let policy_of_budget n =
  if n > 0 then
    Some (Spice.Recover.with_newton_budget n Spice.Recover.default)
  else if n < 0 then
    or_die (Error (Printf.sprintf "--newton-budget %d: must be positive" n))
  else None

let print_resilience stats =
  if stats.Mtcmos.Resilience.attempted > 0 then
    Format.printf "%a@." Mtcmos.Resilience.pp_report stats

(* Worker-domain count for the parallel subcommands.  0 (the default)
   means "one worker per available core"; results are identical whatever
   the value (Par.Pool's deterministic chunked scheduling). *)
let jobs_term =
  let doc =
    "Number of worker domains for the sweep/search ($(b,0) = one per \
     available core).  The output is bit-for-bit identical whatever \
     $(docv) is; only the wall time changes."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs n =
  if n = 0 then Par.Pool.default_jobs ()
  else if n > 0 then n
  else or_die (Error (Printf.sprintf "--jobs %d: must be >= 0" n))

let engine_term =
  let doc =
    "Delay engine: $(b,bp) (the fast switch-level breakpoint tool, the \
     default) or $(b,spice) (the transistor-level reference)."
  in
  Arg.(
    value & opt (some string) None & info [ "engine" ] ~docv:"ENGINE" ~doc)

let resolve_engine name =
  match name with
  | None -> Eval.Engine.Breakpoint
  | Some s -> or_die (Eval.Engine.of_string s)

let fast_term =
  let doc =
    "Fast transient path for the transistor-level engine: $(b,off) \
     (exact, the default), $(b,reduce) (series-RC chain reduction, \
     exact up to LU rounding) or $(b,reduce-bypass) (reduction plus \
     quiescent-device bypass and LTE-controlled stepping, fastest, \
     within calibrated tolerance bands)."
  in
  Arg.(value & opt string "off" & info [ "fast" ] ~docv:"MODE" ~doc)

let resolve_fast s = or_die (Spice.Engine.Opts.fast_of_string s)

(* Evaluation-cache plumbing shared by the analysis subcommands: the
   cache is on by default (--no-cache disables), --cache-file FILE
   loads FILE when it exists and saves back on exit (so e.g. a search
   run warms a later sweep), --cache-stats prints the hit/miss/eviction
   report at the end. *)
type cache_opts = {
  cache : Eval.Cache.t option;
  cache_file : string option;
  show_stats : bool;
}

let cache_term =
  let on =
    let doc =
      "Enable the evaluation cache.  This is the default; the flag \
       exists to spell the intent (and to override a habit-formed \
       $(b,--no-cache))."
    in
    Arg.(value & flag & info [ "cache" ] ~doc)
  in
  let off =
    let doc = "Disable the evaluation cache." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let file =
    let doc =
      "Persist the evaluation cache: load $(docv) if it exists, save \
       back on exit.  Lets one run warm the next (e.g. $(b,search) \
       then $(b,sweep))."
    in
    Arg.(
      value & opt (some string) None & info [ "cache-file" ] ~docv:"FILE" ~doc)
  in
  let show =
    let doc = "Print cache hit/miss/eviction counters at the end." in
    Arg.(value & flag & info [ "cache-stats" ] ~doc)
  in
  let make on off file show =
    ignore on;
    if off then { cache = None; cache_file = None; show_stats = show }
    else
      let c =
        match file with
        | Some f when Sys.file_exists f ->
          (try Eval.Cache.load f
           with Failure m | Sys_error m ->
             prerr_endline ("mtsize: ignoring cache file: " ^ m);
             Eval.Cache.create ())
        | _ -> Eval.Cache.create ()
      in
      { cache = Some c; cache_file = file; show_stats = show }
  in
  Term.(const make $ on $ off $ file $ show)

let finish_cache co =
  match (co.cache, co.cache_file) with
  | Some c, Some f ->
    (try Eval.Cache.save c f
     with Sys_error m -> prerr_endline ("mtsize: could not save cache: " ^ m))
  | _ -> ()

(* Observability plumbing, shared by every subcommand: --trace FILE
   writes a Chrome trace_event JSON of the run's spans, --metrics[=FILE]
   dumps the metrics registry as JSON lines (default stdout), --report
   prints the structured run report.  With none of the flags the run
   carries the shared no-op handle — zero overhead, bit-identical
   numeric output. *)
type obs_opts = {
  obs : Obs.t;
  trace_file : string option;
  metrics_out : string option; (* "-" = stdout *)
  report : bool;
  profile_out : string option; (* collapsed-stack flamegraph file *)
}

let obs_term =
  let trace =
    let doc =
      "Write the run's spans as Chrome trace_event JSON to $(docv) \
       (loadable in Perfetto / about:tracing); the registry counters \
       are embedded so $(b,mtsize trace-check) can validate the file \
       on its own."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc =
      "Dump the metrics registry as JSON lines at the end of the run, \
       to $(docv) ($(b,-) or no value: stdout)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let report =
    let doc =
      "Print the run report at the end: solver effort, recovery-ladder \
       usage, cache hit rate, per-worker pool utilization, hottest \
       spans."
    in
    Arg.(value & flag & info [ "report" ] ~doc)
  in
  let profile =
    let doc =
      "Profile the run from its spans and write the call tree in \
       collapsed-stack format to $(docv) (default \
       $(b,profile.folded)) — one 'frame;frame self-µs' line per call \
       path, directly consumable by flamegraph tooling — plus the \
       timing-free per-label call counts (invariant in --jobs and \
       cache settings) to $(docv).golden.  Implies span collection."
    in
    Arg.(
      value
      & opt ~vopt:(Some "profile.folded") (some string) None
      & info [ "profile" ] ~docv:"FILE" ~doc)
  in
  let make trace metrics report profile =
    let obs =
      if trace <> None || metrics <> None || report || profile <> None then
        Obs.create ~trace:(trace <> None || profile <> None) ()
      else Obs.disabled
    in
    { obs; trace_file = trace; metrics_out = metrics; report;
      profile_out = profile }
  in
  Term.(const make $ trace $ metrics $ report $ profile)

(* End-of-run output, in registry order: publish the cache counters
   (idempotent set), render --cache-stats from the registry (the cache
   line and the run report now share one formatter), dump the metrics,
   write the trace, print the report. *)
let finish_obs ?co oo =
  let cache = Option.bind co (fun co -> co.cache) in
  let show_stats =
    match co with Some co -> co.show_stats | None -> false
  in
  (* --cache-stats is a registry view even when no obs flag was given:
     publish into a private registry so the formatting path is shared *)
  let obs =
    if show_stats && not (Obs.metrics_on oo.obs) then Obs.create ()
    else oo.obs
  in
  (match cache with
   | Some c when Obs.metrics_on obs -> Eval.Cache.publish c obs
   | _ -> ());
  if show_stats then begin
    match cache with
    | None -> Format.printf "cache: disabled@."
    | Some _ ->
      (match Obs.Report.cache_summary (Obs.metrics obs) with
       | Some line -> Format.printf "%s@." line
       | None -> ())
  end;
  (match oo.metrics_out with
   | None -> ()
   | Some "-" -> print_string (Obs.metrics_jsonl oo.obs)
   | Some f ->
     let oc = open_out f in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc (Obs.metrics_jsonl oo.obs)));
  (match oo.trace_file with
   | None -> ()
   | Some f -> Obs.write_trace oo.obs f);
  (match oo.profile_out with
   | None -> ()
   | Some f -> Obs.write_profile oo.obs f);
  if oo.report then print_string (Obs.report oo.obs)

let ctx_of ?policy ?stats ?(obs = Obs.disabled) ?(fast = `Off) ~engine ~jobs
    co =
  let ctx =
    Eval.Ctx.default
    |> Eval.Ctx.with_engine engine
    |> Eval.Ctx.with_fast fast
    |> Eval.Ctx.with_jobs jobs
    |> Eval.Ctx.with_obs obs
  in
  let ctx =
    match policy with Some p -> Eval.Ctx.with_policy p ctx | None -> ctx
  in
  let ctx =
    match stats with
    | Some s ->
      (* the root accumulator (and only the root — worker shards merge
         into it) mirrors its counts into the registry *)
      if Obs.metrics_on obs then Mtcmos.Resilience.attach_obs s obs;
      Eval.Ctx.with_stats s ctx
    | None -> ctx
  in
  match co.cache with Some c -> Eval.Ctx.with_cache c ctx | None -> ctx

(* ---- subcommands ---------------------------------------------------------- *)

let sweep_cmd =
  let run tech_name circuit_name vectors wls engine fast budget jobs co oo =
    let _tech, bc, vecs = or_die (setup tech_name circuit_name vectors) in
    let stats = Mtcmos.Resilience.create () in
    let ctx =
      ctx_of ?policy:(policy_of_budget budget) ~stats ~obs:oo.obs
        ~fast:(resolve_fast fast) ~engine:(resolve_engine engine)
        ~jobs:(resolve_jobs jobs) co
    in
    Format.printf "%s: %a@." bc.name Netlist.Circuit.pp_stats bc.circuit;
    Mtcmos.Sizing.sweep ~ctx bc.circuit ~vectors:vecs ~wls
    |> List.iter (fun m ->
           Format.printf "%a@." Mtcmos.Sizing.pp_measurement m);
    print_resilience stats;
    finish_cache co;
    finish_obs ~co oo
  in
  let wls_term =
    let doc = "Sleep W/L values to sweep." in
    Arg.(
      value
      & opt (list float) [ 2.0; 5.0; 10.0; 20.0; 50.0; 100.0 ]
      & info [ "w"; "wl" ] ~docv:"WLS" ~doc)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Delay and degradation versus sleep size")
    Term.(const run $ tech_term $ circuit_term $ vectors_term $ wls_term
          $ engine_term $ fast_term $ newton_budget_term $ jobs_term
          $ cache_term $ obs_term)

let size_cmd =
  let run tech_name circuit_name vectors target engine fast budget jobs
      repair co oo =
    let _tech, bc, vecs = or_die (setup tech_name circuit_name vectors) in
    let stats = Mtcmos.Resilience.create () in
    let ctx =
      ctx_of ?policy:(policy_of_budget budget) ~stats ~obs:oo.obs
        ~fast:(resolve_fast fast) ~engine:(resolve_engine engine)
        ~jobs:(resolve_jobs jobs) co
    in
    let infeasible = ref false in
    (try
       if repair then begin
         let r =
           Mtcmos.Resize.repair_and_size ~ctx bc.circuit ~vectors:vecs
             ~target
         in
         if r.Mtcmos.Resize.repair.Mtcmos.Resize.upsized <> [] then
           Format.printf "repaired %d weak driver(s) in %d pass(es)@."
             (List.length r.Mtcmos.Resize.repair.Mtcmos.Resize.upsized)
             r.Mtcmos.Resize.repair.Mtcmos.Resize.iterations;
         Format.printf "minimum W/L for %.1f%% degradation: %.1f@."
           (100.0 *. target) r.Mtcmos.Resize.wl;
         Format.printf "%a@." Mtcmos.Sizing.pp_measurement
           r.Mtcmos.Resize.measurement
       end
       else begin
         let wl =
           Mtcmos.Sizing.size_for_degradation ~ctx bc.circuit ~vectors:vecs
             ~target
         in
         let m = Mtcmos.Sizing.delay_at ~ctx bc.circuit ~vectors:vecs ~wl in
         Format.printf "minimum W/L for %.1f%% degradation: %.1f@."
           (100.0 *. target) wl;
         Format.printf "%a@." Mtcmos.Sizing.pp_measurement m
       end
     with Not_found ->
       (* fall through: the work done bisecting is still worth saving —
          --cache-file must persist even on the failure path *)
       prerr_endline "mtsize: no feasible size in [0.5, 4096]";
       infeasible := true);
    print_resilience stats;
    finish_cache co;
    finish_obs ~co oo;
    if !infeasible then exit 1
  in
  let target_term =
    let doc = "Degradation budget as a fraction (0.05 = 5%)." in
    Arg.(value & opt float 0.05 & info [ "target" ] ~docv:"FRAC" ~doc)
  in
  let repair_term =
    let doc =
      "First upsize weak drivers (the $(b,lint) screen) to a clean \
       circuit, then size its sleep transistor."
    in
    Arg.(value & flag & info [ "repair" ] ~doc)
  in
  Cmd.v
    (Cmd.info "size" ~doc:"Minimum sleep size for a delay budget")
    Term.(const run $ tech_term $ circuit_term $ vectors_term $ target_term
          $ engine_term $ fast_term $ newton_budget_term $ jobs_term
          $ repair_term $ cache_term $ obs_term)

let worst_cmd =
  let run tech_name circuit_name wl top sample co oo =
    let tech, bc, _ = or_die (setup tech_name circuit_name []) in
    let total_bits = List.fold_left ( + ) 0 bc.widths in
    let pairs =
      if 2 * total_bits <= 14 then
        Mtcmos.Vectors.enumerate_pairs ~widths:bc.widths
      else Mtcmos.Vectors.random_pairs ~widths:bc.widths sample
    in
    let sleep =
      Mtcmos.Breakpoint_sim.Sleep_fet
        (Device.Sleep.make tech.Device.Tech.sleep_nmos ~wl
           ~vdd:tech.Device.Tech.vdd)
    in
    Format.printf "ranking %d vector pairs at W/L = %.0f...@."
      (List.length pairs) wl;
    let ctx = ctx_of ~obs:oo.obs ~engine:Eval.Engine.Breakpoint ~jobs:1 co in
    let ranked = Mtcmos.Vectors.worst ~ctx bc.circuit ~sleep ~pairs ~top in
    List.iter
      (fun r ->
        let fmt g =
          String.concat ","
            (List.map (fun (_, v) -> string_of_int v) g)
        in
        let before, after = r.Mtcmos.Vectors.pair in
        Format.printf "(%s)->(%s)  delay %s  degradation %.1f%%  vx %s@."
          (fmt before) (fmt after)
          (Phys.Units.to_eng_string ~unit:"s" r.Mtcmos.Vectors.delay)
          (100.0 *. r.Mtcmos.Vectors.degradation)
          (Phys.Units.to_eng_string ~unit:"V" r.Mtcmos.Vectors.vx_peak))
      ranked;
    finish_cache co;
    finish_obs ~co oo
  in
  let wl_term =
    let doc = "Sleep transistor W/L." in
    Arg.(value & opt float 10.0 & info [ "w"; "wl" ] ~docv:"WL" ~doc)
  in
  let top_term =
    let doc = "How many worst vectors to print." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let sample_term =
    let doc = "Random sample size for wide circuits." in
    Arg.(value & opt int 500 & info [ "sample" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "worst-vectors"
       ~doc:"Rank input transitions by MTCMOS susceptibility")
    Term.(const run $ tech_term $ circuit_term $ wl_term $ top_term
          $ sample_term $ cache_term $ obs_term)

let simulate_cmd =
  let run tech_name circuit_name vectors wl oo =
    let tech, bc, vecs = or_die (setup tech_name circuit_name vectors) in
    let before, after = List.hd vecs in
    let config =
      if wl > 0.0 then Mtcmos.Breakpoint_sim.mtcmos_config tech ~wl
      else Mtcmos.Breakpoint_sim.default_config
    in
    let r =
      Mtcmos.Breakpoint_sim.simulate_ints ~config ~obs:oo.obs bc.circuit
        ~before ~after
    in
    Format.printf "events: %d, finished at %s, vx peak %s, peak current %s@."
      (Mtcmos.Breakpoint_sim.events r)
      (Phys.Units.to_eng_string ~unit:"s" (Mtcmos.Breakpoint_sim.t_finish r))
      (Phys.Units.to_eng_string ~unit:"V" (Mtcmos.Breakpoint_sim.vx_peak r))
      (Phys.Units.to_eng_string ~unit:"A"
         (Mtcmos.Breakpoint_sim.peak_discharge_current r));
    Array.iter
      (fun n ->
        match Mtcmos.Breakpoint_sim.net_delay r n with
        | Some d ->
          Format.printf "  output %-8s delay %s@."
            (Netlist.Circuit.net_name bc.circuit n)
            (Phys.Units.to_eng_string ~unit:"s" d)
        | None ->
          Format.printf "  output %-8s (no transition)@."
            (Netlist.Circuit.net_name bc.circuit n))
      (Netlist.Circuit.outputs bc.circuit);
    finish_obs oo
  in
  let wl_term =
    let doc = "Sleep W/L; 0 simulates the conventional CMOS circuit." in
    Arg.(value & opt float 10.0 & info [ "w"; "wl" ] ~docv:"WL" ~doc)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate one transition with the fast tool")
    Term.(const run $ tech_term $ circuit_term $ vectors_term $ wl_term
          $ obs_term)

let compare_cmd =
  let run tech_name circuit_name vectors wl fast budget jobs co oo =
    let _tech, bc, vecs = or_die (setup tech_name circuit_name vectors) in
    let jobs = resolve_jobs jobs in
    (* both engines share one cache (distinct key spaces); the spice
       path's internal bp estimates can hit the bp run's entries *)
    let bp_ctx = ctx_of ~obs:oo.obs ~engine:Eval.Engine.Breakpoint ~jobs co in
    let bp = Mtcmos.Sizing.delay_at ~ctx:bp_ctx bc.circuit ~vectors:vecs ~wl in
    let stats = Mtcmos.Resilience.create () in
    let sp_ctx =
      ctx_of ?policy:(policy_of_budget budget) ~stats ~obs:oo.obs
        ~fast:(resolve_fast fast) ~engine:Eval.Engine.Spice_level ~jobs co
    in
    let sp = Mtcmos.Sizing.delay_at ~ctx:sp_ctx bc.circuit ~vectors:vecs ~wl in
    Format.printf "switch-level:     %a@." Mtcmos.Sizing.pp_measurement bp;
    Format.printf "transistor-level: %a@." Mtcmos.Sizing.pp_measurement sp;
    print_resilience stats;
    finish_cache co;
    finish_obs ~co oo
  in
  let wl_term =
    let doc = "Sleep transistor W/L." in
    Arg.(value & opt float 10.0 & info [ "w"; "wl" ] ~docv:"WL" ~doc)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare the fast tool against the transistor-level engine")
    Term.(const run $ tech_term $ circuit_term $ vectors_term $ wl_term
          $ fast_term $ newton_budget_term $ jobs_term $ cache_term
          $ obs_term)

let estimate_cmd =
  let run tech_name circuit_name vectors co oo =
    let tech, bc, vecs = or_die (setup tech_name circuit_name vectors) in
    Format.printf "sum-of-widths estimate: W/L = %.1f@."
      (Mtcmos.Estimators.sum_of_widths bc.circuit);
    let before, after = List.hd vecs in
    let ip =
      Mtcmos.Estimators.peak_current_of_transition bc.circuit ~before ~after
    in
    let vb = Mtcmos.Estimators.v_budget_for_degradation tech ~target:0.05 in
    Format.printf "peak current: %s; 5%%-budget bounce limit %s@."
      (Phys.Units.to_eng_string ~unit:"A" ip)
      (Phys.Units.to_eng_string ~unit:"V" vb);
    if ip > 0.0 then
      Format.printf "peak-current estimate:  W/L = %.1f@."
        (Mtcmos.Estimators.peak_current_wl tech ~i_peak:ip ~v_budget:vb);
    let ctx = ctx_of ~obs:oo.obs ~engine:Eval.Engine.Breakpoint ~jobs:1 co in
    let wl =
      Mtcmos.Sizing.size_for_degradation ~ctx bc.circuit ~vectors:vecs
        ~target:0.05
    in
    Format.printf "simulator-driven size:  W/L = %.1f@." wl;
    finish_cache co;
    finish_obs ~co oo
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Naive baselines versus the simulator size")
    Term.(const run $ tech_term $ circuit_term $ vectors_term $ cache_term
          $ obs_term)

let sta_cmd =
  let run tech_name circuit_name wl oo =
    let tech, bc, _ = or_die (setup tech_name circuit_name []) in
    let t = Mtcmos.Sta.analyze bc.circuit in
    let path = Mtcmos.Sta.critical_path t in
    Format.printf "static critical path: %s at %s@."
      (Netlist.Circuit.net_name bc.circuit path.Mtcmos.Sta.endpoint)
      (Phys.Units.to_eng_string ~unit:"s" path.Mtcmos.Sta.arrival);
    List.iter
      (fun gid ->
        let g = (Netlist.Circuit.gates bc.circuit).(gid) in
        Format.printf "  %-12s -> %-10s %s@."
          (Netlist.Gate.name g.Netlist.Circuit.kind)
          (Netlist.Circuit.net_name bc.circuit g.Netlist.Circuit.output)
          (Phys.Units.to_eng_string ~unit:"s" (Mtcmos.Sta.gate_delay t gid)))
      path.Mtcmos.Sta.through;
    if wl > 0.0 then begin
      let sleep =
        Mtcmos.Breakpoint_sim.Sleep_fet
          (Device.Sleep.make tech.Device.Tech.sleep_nmos ~wl
             ~vdd:tech.Device.Tech.vdd)
      in
      let hi = List.map (fun w -> (w, (1 lsl w) - 1)) bc.widths in
      let lo = List.map (fun w -> (w, 0)) bc.widths in
      let under =
        Mtcmos.Sta.mtcmos_underestimate t bc.circuit ~sleep
          ~vectors:[ (lo, hi); (hi, lo) ]
      in
      Format.printf
        "MTCMOS at W/L = %.0f runs %.1f%% past the static estimate@." wl
        (100.0 *. under)
    end;
    finish_obs oo
  in
  let wl_term =
    let doc = "Also quantify the MTCMOS underestimate at this sleep W/L." in
    Arg.(value & opt float 0.0 & info [ "w"; "wl" ] ~docv:"WL" ~doc)
  in
  Cmd.v
    (Cmd.info "sta" ~doc:"Static critical path (vectorless baseline)")
    Term.(const run $ tech_term $ circuit_term $ wl_term $ obs_term)

let select_cmd =
  let run tech_name circuit_name vectors budget clusters objective passes
      bounce engine fast jobs co oo =
    let _tech, bc, vecs = or_die (setup tech_name circuit_name vectors) in
    if budget < 0.0 then
      or_die
        (Error (Printf.sprintf "--delay-budget %g: must be >= 0" budget));
    if clusters < 1 then
      or_die (Error (Printf.sprintf "--clusters %d: must be >= 1" clusters));
    if passes < 0 then
      or_die (Error (Printf.sprintf "--passes %d: must be >= 0" passes));
    let objective =
      match Mtcmos.Selective.objective_of_string objective with
      | Some o -> o
      | None ->
        or_die
          (Error
             (Printf.sprintf "unknown objective %S (leakage | area | mixed)"
                objective))
    in
    let ctx =
      ctx_of ~obs:oo.obs ~fast:(resolve_fast fast)
        ~engine:(resolve_engine engine) ~jobs:(resolve_jobs jobs) co
    in
    let bounce_vectors = if bounce then Some vecs else None in
    (try
       let r =
         Mtcmos.Selective.optimize ~ctx ~objective ~clusters
           ~max_passes:passes ?bounce_vectors bc.circuit
           ~delay_budget:budget
       in
       Format.printf "%a@." Mtcmos.Selective.pp_result r;
       finish_cache co;
       finish_obs ~co oo
     with Not_found ->
       prerr_endline
         "mtsize: delay budget infeasible even all-low-Vt at W/L 4096";
       finish_cache co;
       finish_obs ~co oo;
       exit 1)
  in
  let budget_term =
    let doc =
      "Allowed critical-arrival increase over the all-low-Vt ideal-ground \
       baseline, as a fraction (0.1 = 10%)."
    in
    Arg.(value & opt float 0.1 & info [ "delay-budget" ] ~docv:"FRAC" ~doc)
  in
  let clusters_term =
    let doc = "Number of sleep clusters to seed from the level bands." in
    Arg.(value & opt int 4 & info [ "clusters" ] ~docv:"K" ~doc)
  in
  let objective_term =
    let doc = "What to minimize: $(b,leakage), $(b,area) or $(b,mixed)." in
    Arg.(value & opt string "leakage" & info [ "objective" ] ~docv:"OBJ" ~doc)
  in
  let passes_term =
    let doc = "Refinement rounds for the reclaim/move phases." in
    Arg.(value & opt int 2 & info [ "passes" ] ~docv:"N" ~doc)
  in
  let bounce_term =
    let doc =
      "Also simulate the final answer's virtual-ground bounce over the \
       given $(b,--vectors) (default all-low -> all-high) and report the \
       worst peak."
    in
    Arg.(value & flag & info [ "bounce" ] ~doc)
  in
  Cmd.v
    (Cmd.info "select"
       ~doc:
         "Selective-MTCMOS co-optimization: per-gate Vt assignment, sleep \
          clustering and per-cluster sizing under a delay budget")
    Term.(const run $ tech_term $ circuit_term $ vectors_term $ budget_term
          $ clusters_term $ objective_term $ passes_term $ bounce_term
          $ engine_term $ fast_term $ jobs_term $ cache_term $ obs_term)

let energy_cmd =
  let run tech_name circuit_name wl oo =
    let _tech, bc, _ = or_die (setup tech_name circuit_name []) in
    let b = Mtcmos.Energy.budget bc.circuit ~wl in
    Format.printf "%a@." Mtcmos.Energy.pp_budget b;
    Format.printf "sleep-cycle overhead: %s@."
      (Phys.Units.to_eng_string ~unit:"J"
         (Mtcmos.Energy.sleep_cycle_overhead bc.circuit ~wl));
    Format.printf "break-even idle time: %s@."
      (Phys.Units.to_eng_string ~unit:"s"
         (Mtcmos.Energy.break_even_idle_time bc.circuit ~wl));
    finish_obs oo
  in
  let wl_term =
    let doc = "Sleep transistor W/L." in
    Arg.(value & opt float 10.0 & info [ "w"; "wl" ] ~docv:"WL" ~doc)
  in
  Cmd.v
    (Cmd.info "energy" ~doc:"Sleep-device energy budget and break-even")
    Term.(const run $ tech_term $ circuit_term $ wl_term $ obs_term)

let wakeup_cmd =
  let run tech_name circuit_name wl simulate oo =
    let _tech, bc, _ = or_die (setup tech_name circuit_name []) in
    let e = Mtcmos.Wakeup.estimate bc.circuit ~wl in
    Format.printf
      "rail capacitance %s, floats to %s in sleep, analytic wake %s@."
      (Phys.Units.to_eng_string ~unit:"F" e.Mtcmos.Wakeup.rail_capacitance)
      (Phys.Units.to_eng_string ~unit:"V" e.Mtcmos.Wakeup.v_float)
      (Phys.Units.to_eng_string ~unit:"s" e.Mtcmos.Wakeup.analytic);
    (if simulate then
      match Mtcmos.Wakeup.simulate bc.circuit ~wl with
      | t ->
        Format.printf "transistor-level wake (to 10%% Vdd): %s@."
          (Phys.Units.to_eng_string ~unit:"s" t)
      | exception Not_found ->
        Format.printf "transistor-level wake: did not settle@.");
    finish_obs oo
  in
  let wl_term =
    let doc = "Sleep transistor W/L." in
    Arg.(value & opt float 10.0 & info [ "w"; "wl" ] ~docv:"WL" ~doc)
  in
  let sim_term =
    let doc = "Also run the transistor-level wake transient." in
    Arg.(value & flag & info [ "simulate" ] ~doc)
  in
  Cmd.v
    (Cmd.info "wakeup" ~doc:"Sleep-exit latency analysis")
    Term.(const run $ tech_term $ circuit_term $ wl_term $ sim_term
          $ obs_term)

let deck_cmd =
  let run tech_name circuit_name wl out oo =
    let _tech, bc, _ = or_die (setup tech_name circuit_name []) in
    let stimuli =
      Array.to_list
        (Array.map
           (fun n -> (n, Phys.Pwl.constant 0.0))
           (Netlist.Circuit.inputs bc.circuit))
    in
    let config =
      if wl > 0.0 then Netlist.Expand.mtcmos ~wl else Netlist.Expand.default
    in
    let inst = Netlist.Expand.expand ~config bc.circuit ~stimuli in
    Spice.Deck.write_deck ~title:("mtsize export: " ^ bc.name)
      ~t_stop:10e-9 ~path:out inst.Netlist.Expand.netlist;
    Format.printf "wrote %s (%a)@." out Netlist.Transistor.pp_stats
      inst.Netlist.Expand.netlist;
    finish_obs oo
  in
  let wl_term =
    let doc = "Sleep W/L; 0 exports the conventional CMOS netlist." in
    Arg.(value & opt float 10.0 & info [ "w"; "wl" ] ~docv:"WL" ~doc)
  in
  let out_term =
    let doc = "Output file." in
    Arg.(value & opt string "out.sp" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "export-deck"
       ~doc:"Write the expanded transistor netlist as a SPICE deck")
    Term.(const run $ tech_term $ circuit_term $ wl_term $ out_term
          $ obs_term)

let lint_cmd =
  let run tech_name circuit_name oo =
    let _tech, bc, _ = or_die (setup tech_name circuit_name []) in
    (match Mtcmos.Lint.check bc.circuit with
     | [] -> Format.printf "%s: clean@." bc.name
     | findings ->
       List.iter
         (fun f -> Format.printf "%a@." Mtcmos.Lint.pp_finding f)
         findings;
       let warnings =
         List.exists
           (fun f -> f.Mtcmos.Lint.severity = Mtcmos.Lint.Warning)
           findings
       in
       if warnings then exit 1);
    finish_obs oo
  in
  Cmd.v
    (Cmd.info "lint" ~doc:"MTCMOS design checks (exit 1 on warnings)")
    Term.(const run $ tech_term $ circuit_term $ obs_term)

let search_cmd =
  let run tech_name circuit_name wl restarts objective engine fast jobs co
      oo =
    let tech, bc, _ = or_die (setup tech_name circuit_name []) in
    let sleep =
      Mtcmos.Breakpoint_sim.Sleep_fet
        (Device.Sleep.make tech.Device.Tech.sleep_nmos ~wl
           ~vdd:tech.Device.Tech.vdd)
    in
    let objective = or_die (Runner.Catalog.objective_of_name objective) in
    let stats = Mtcmos.Resilience.create () in
    let ctx =
      ctx_of ~stats ~obs:oo.obs ~fast:(resolve_fast fast)
        ~engine:(resolve_engine engine) ~jobs:(resolve_jobs jobs) co
    in
    let o =
      Mtcmos.Search.hill_climb ~ctx ~restarts bc.circuit ~sleep
        ~widths:bc.widths objective
    in
    let fmt g =
      String.concat "," (List.map (fun (_, v) -> string_of_int v) g)
    in
    let before, after = o.Mtcmos.Search.pair in
    Format.printf "worst found: (%s)->(%s) score %.4g (%d evaluations)@."
      (fmt before) (fmt after) o.Mtcmos.Search.score
      o.Mtcmos.Search.evaluations;
    print_resilience stats;
    finish_cache co;
    finish_obs ~co oo
  in
  let wl_term =
    let doc = "Sleep transistor W/L." in
    Arg.(value & opt float 10.0 & info [ "w"; "wl" ] ~docv:"WL" ~doc)
  in
  let restarts_term =
    let doc = "Hill-climb restarts." in
    Arg.(value & opt int 8 & info [ "restarts" ] ~docv:"N" ~doc)
  in
  let objective_term =
    let doc = "Objective: degradation | delay | vx | current." in
    Arg.(value & opt string "degradation"
         & info [ "objective" ] ~docv:"OBJ" ~doc)
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Stochastic worst-vector hunt for unenumerable spaces")
    Term.(const run $ tech_term $ circuit_term $ wl_term $ restarts_term
          $ objective_term $ engine_term $ fast_term $ jobs_term
          $ cache_term $ obs_term)

let dot_cmd =
  let run tech_name circuit_name out oo =
    let _tech, bc, _ = or_die (setup tech_name circuit_name []) in
    let dot = Netlist.Circuit.to_dot bc.circuit in
    (match out with
     | "-" -> print_string dot
     | path ->
       let oc = open_out path in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc dot);
       Format.printf "wrote %s (depth %d)@." path
         (Netlist.Circuit.logic_depth bc.circuit));
    finish_obs oo
  in
  let out_term =
    let doc = "Output file, or - for stdout." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the gate graph as Graphviz")
    Term.(const run $ tech_term $ circuit_term $ out_term $ obs_term)

let workload_cmd =
  let run tech_name circuit_name wl period_ps cycles seed oo =
    let tech, bc, _ = or_die (setup tech_name circuit_name []) in
    let config =
      if wl > 0.0 then Mtcmos.Breakpoint_sim.mtcmos_config tech ~wl
      else Mtcmos.Breakpoint_sim.default_config
    in
    let vectors =
      Mtcmos.Sequence.random_workload ~seed ~widths:bc.widths cycles
    in
    let r =
      Mtcmos.Sequence.run ~config bc.circuit
        ~period:(period_ps *. 1e-12) ~vectors
    in
    List.iter
      (fun s -> Format.printf "%a@." Mtcmos.Sequence.pp_step s)
      r.Mtcmos.Sequence.steps;
    (match r.Mtcmos.Sequence.worst_delay with
     | Some (i, d) ->
       Format.printf "worst: cycle %d at %s; bounce %s; %d violation(s)@."
         i
         (Phys.Units.to_eng_string ~unit:"s" d)
         (Phys.Units.to_eng_string ~unit:"V" r.Mtcmos.Sequence.worst_vx)
         r.Mtcmos.Sequence.violations
     | None -> Format.printf "no output ever switched@.");
    finish_obs oo;
    if r.Mtcmos.Sequence.violations > 0 then exit 1
  in
  let wl_term =
    let doc = "Sleep W/L; 0 for conventional CMOS." in
    Arg.(value & opt float 10.0 & info [ "w"; "wl" ] ~docv:"WL" ~doc)
  in
  let period_term =
    let doc = "Clock period in picoseconds." in
    Arg.(value & opt float 2000.0 & info [ "period" ] ~docv:"PS" ~doc)
  in
  let cycles_term =
    let doc = "Number of random cycles." in
    Arg.(value & opt int 32 & info [ "cycles" ] ~docv:"N" ~doc)
  in
  let seed_term =
    let doc = "Workload seed." in
    Arg.(value & opt int 31 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Run a random multi-cycle workload (exit 1 on period \
             violations)")
    Term.(const run $ tech_term $ circuit_term $ wl_term $ period_term
          $ cycles_term $ seed_term $ obs_term)

let scale_cmd =
  (* The event-driven core's CLI surface: run a perturbation workload on
     a (typically generated) circuit, report per-step touched/activity/
     falling counts, and cross-check every step against the dense
     reference evaluator.  Everything printed is deterministic (no
     timings), so the golden suite pins it byte for byte. *)
  let run tech_name circuit_name steps flips seed oo =
    let _tech, bc, _ = or_die (setup tech_name circuit_name []) in
    let c = bc.circuit in
    if steps < 1 then or_die (Error "--steps must be >= 1");
    if flips < 1 then or_die (Error "--flips must be >= 1");
    let obs = oo.obs in
    let es = Netlist.Event_sim.of_circuit c in
    let n_inputs = Array.length (Netlist.Circuit.inputs c) in
    Format.printf "%a@." Netlist.Circuit.pp_stats c;
    Format.printf
      "event core: %d gates over %d nets; workload: %d step(s), %d \
       flip(s)/step, seed %d@."
      (Netlist.Event_sim.num_gates es)
      (Netlist.Event_sim.num_nets es)
      steps flips seed;
    let st = Random.State.make [| seed |] in
    let v =
      ref
        (Array.init n_inputs (fun _ ->
             Netlist.Signal.of_bool (Random.State.bool st)))
    in
    let state = ref (Netlist.Event_sim.init es !v) in
    let gates = Netlist.Circuit.num_gates c in
    let agree = ref true in
    let t_touched = ref 0 and t_act = ref 0 and t_fall = ref 0 in
    for i = 1 to steps do
      let v' = Array.copy !v in
      for _ = 1 to flips do
        let k = Random.State.int st n_inputs in
        v'.(k) <-
          (match v'.(k) with
           | Netlist.Signal.L1 -> Netlist.Signal.L0
           | Netlist.Signal.L0 | Netlist.Signal.X -> Netlist.Signal.L1)
      done;
      let m = Netlist.Event_sim.step ~obs es !state v' in
      let touched = List.length m.Netlist.Event_sim.touched in
      let act = Netlist.Event_sim.activity es m in
      let fall = List.length (Netlist.Event_sim.falling_gates es m) in
      (* dense cross-check, every step *)
      let s0 = Netlist.Logic_sim.eval c !v in
      let s1 = Netlist.Logic_sim.eval c v' in
      let ok =
        Netlist.Event_sim.levels es m.Netlist.Event_sim.post = s1
        && Netlist.Event_sim.switched_gates es m
           = Netlist.Logic_sim.switched_gates c s0 s1
        && Netlist.Event_sim.falling_gates es m
           = Netlist.Logic_sim.falling_gates c s0 s1
      in
      if not ok then agree := false;
      t_touched := !t_touched + touched;
      t_act := !t_act + act;
      t_fall := !t_fall + fall;
      Format.printf
        "step %2d: touched %d gate(s) (%.1f%%), activity %d, falling %d@."
        i touched
        (100.0 *. float_of_int touched /. float_of_int gates)
        act fall;
      state := m.Netlist.Event_sim.post;
      v := v'
    done;
    Format.printf
      "total: %d gate evals vs %d dense (%.1f%%); activity %d, falling \
       %d@."
      !t_touched (steps * gates)
      (100.0 *. float_of_int !t_touched /. float_of_int (steps * gates))
      !t_act !t_fall;
    Format.printf "event core agrees with dense reference: %s@."
      (if !agree then "yes" else "NO");
    finish_obs oo;
    if not !agree then exit 1
  in
  let steps_term =
    let doc = "Number of perturbation steps." in
    Arg.(value & opt int 16 & info [ "steps" ] ~docv:"N" ~doc)
  in
  let flips_term =
    let doc = "Input bits flipped per step." in
    Arg.(value & opt int 2 & info [ "flips" ] ~docv:"K" ~doc)
  in
  let seed_term =
    let doc = "Workload seed." in
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Drive the event-driven switch-level core over a perturbation \
          workload (use generated circuits like random20000 or \
          kogge16), cross-checking every step against the dense \
          evaluator.  Exit 1 on any disagreement.")
    Term.(const run $ tech_term $ circuit_term $ steps_term $ flips_term
          $ seed_term $ obs_term)

let run_cmd =
  let run jobfile out journal fresh stop_after engine jobs budget co oo =
    let spec = or_die (Runner.Spec.parse_file jobfile) in
    (* The CLI flags are the outermost defaults: a job file's (defaults
       ...) form overrides them, and a per-job override wins over both. *)
    let ctx =
      ctx_of ?policy:(policy_of_budget budget) ~obs:oo.obs
        ~engine:(resolve_engine engine) ~jobs:(resolve_jobs jobs) co
    in
    let stop_after = if stop_after > 0 then Some stop_after else None in
    let outcome =
      or_die (Runner.run ~ctx ?journal ~fresh ?stop_after spec)
    in
    (match out with
     | "-" -> print_string outcome.Runner.manifest
     | path ->
       let oc = open_out path in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc outcome.Runner.manifest));
    Format.eprintf
      "run: %d job(s) — %d executed, %d replayed; %d ok, %d degraded, %d \
       failed%s@."
      outcome.Runner.total outcome.Runner.executed outcome.Runner.replayed
      outcome.Runner.ok outcome.Runner.degraded outcome.Runner.failed
      (if outcome.Runner.interrupted then " (interrupted)" else "");
    finish_cache co;
    finish_obs ~co oo;
    if outcome.Runner.failed > 0 then exit 1
  in
  let jobfile_term =
    let doc = "The batch job file (S-expressions; see the README)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JOBFILE" ~doc)
  in
  let out_term =
    let doc = "Where to write the JSON manifest ($(b,-) = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let journal_term =
    let doc =
      "Checkpoint each completed job to $(docv); re-running with the \
       same job file resumes after the last completed job and produces \
       a manifest byte-identical to an uninterrupted run."
    in
    Arg.(
      value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let fresh_term =
    let doc = "Ignore (and truncate) an existing journal." in
    Arg.(value & flag & info [ "fresh" ] ~doc)
  in
  let stop_after_term =
    let doc =
      "Stop after executing $(docv) fresh jobs (0 = run to completion). \
       A testing hook: simulates an interrupt so the journal-resume \
       path can be exercised deterministically."
    in
    Arg.(value & opt int 0 & info [ "stop-after" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a batch job file through one shared evaluation \
          context (single cache, one worker pool, per-job failure \
          isolation); exit 1 if any job failed.")
    Term.(const run $ jobfile_term $ out_term $ journal_term $ fresh_term
          $ stop_after_term $ engine_term $ jobs_term $ newton_budget_term
          $ cache_term $ obs_term)

(* ---- serve / submit: the sizing daemon ----------------------------------- *)

let endpoint_of socket port =
  match (socket, port) with
  | Some path, None -> Serve.Daemon.Unix_socket path
  | None, Some p when p > 0 && p < 65536 -> Serve.Daemon.Tcp p
  | None, Some p -> or_die (Error (Printf.sprintf "--port %d: out of range" p))
  | _ -> or_die (Error "exactly one of --socket PATH or --port N is required")

let socket_term =
  let doc = "Listen on (or connect to) a Unix domain socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_term =
  let doc = "Listen on (or connect to) TCP loopback port $(docv)." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let run socket port spool depth workers shards max_requests recover_only
      engine jobs budget co oo =
    let endpoint = endpoint_of socket port in
    if depth < 1 then or_die (Error "--queue-depth must be >= 1");
    if workers < 1 then or_die (Error "--workers must be >= 1");
    if shards < 1 then or_die (Error "--cache-shards must be >= 1");
    (* the daemon shares one cache across worker threads: stripe it so
       concurrent batches do not serialize on a single lock *)
    let co =
      { co with
        cache =
          (match co.cache with
           | None -> None
           | Some _ ->
             Some
               (match co.cache_file with
                | Some f when Sys.file_exists f ->
                  (try Eval.Cache.load ~shards f
                   with Failure m | Sys_error m ->
                     prerr_endline ("mtsize: ignoring cache file: " ^ m);
                     Eval.Cache.create ~shards ())
                | _ -> Eval.Cache.create ~shards ())) }
    in
    (* /metrics needs a live registry even when no --metrics flag was
       given locally *)
    let obs = if Obs.enabled oo.obs then oo.obs else Obs.create () in
    let ctx =
      ctx_of ?policy:(policy_of_budget budget) ~obs
        ~engine:(resolve_engine engine) ~jobs:(resolve_jobs jobs) co
    in
    let cfg =
      { Serve.Daemon.endpoint;
        spool;
        queue_depth = depth;
        workers;
        max_requests = (if max_requests > 0 then Some max_requests else None);
        recover_only;
        read_timeout_s = 10.0 }
    in
    (match Serve.Daemon.run ~ctx cfg with
     | Ok recovered ->
       Format.eprintf "serve: drained cleanly (%d request(s) recovered)@."
         recovered
     | Error e -> or_die (Error e));
    finish_cache co;
    finish_obs ~co oo
  in
  let spool_term =
    let doc =
      "Spool directory for request specs, journals and manifests \
       (created if missing).  This is the daemon's crash-recovery \
       state: restarting with the same spool finishes interrupted \
       requests with byte-identical manifests."
    in
    Arg.(required & opt (some string) None & info [ "spool" ] ~docv:"DIR" ~doc)
  in
  let depth_term =
    let doc =
      "Waiting-queue capacity.  A submit that finds the queue full is \
       answered with an explicit $(b,rejected) event, never blocked."
    in
    Arg.(value & opt int 16 & info [ "queue-depth" ] ~docv:"N" ~doc)
  in
  let workers_term =
    let doc = "Concurrent batch executors." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let shards_term =
    let doc =
      "Lock stripes in the shared evaluation cache.  More stripes, \
       less contention between concurrent batches; counters and cached \
       values are shard-count-invariant."
    in
    Arg.(value & opt int 16 & info [ "cache-shards" ] ~docv:"N" ~doc)
  in
  let max_requests_term =
    let doc =
      "Drain and exit after $(docv) finished requests (0 = serve \
       forever).  A testing hook."
    in
    Arg.(value & opt int 0 & info [ "max-requests" ] ~docv:"N" ~doc)
  in
  let recover_only_term =
    let doc =
      "Replay interrupted requests from the spool, write their \
       manifests, and exit without listening.  A recovery/testing hook."
    in
    Arg.(value & flag & info [ "recover-only" ] ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived sizing daemon: accepts batch job files over a \
          Unix/TCP socket, runs them concurrently through one shared \
          evaluation context (sharded cache), streams per-job manifest \
          fragments, and recovers interrupted requests from its spool \
          after a crash.  GET /metrics and /healthz are served on the \
          same socket.  SIGTERM/SIGINT drain gracefully.")
    Term.(const run $ socket_term $ port_term $ spool_term $ depth_term
          $ workers_term $ shards_term $ max_requests_term
          $ recover_only_term $ engine_term $ jobs_term $ newton_budget_term
          $ cache_term $ obs_term)

let submit_cmd =
  let run jobfile socket port rid deadline out quiet =
    let endpoint = endpoint_of socket port in
    let spec =
      match
        In_channel.with_open_bin jobfile In_channel.input_all
      with
      | s -> s
      | exception Sys_error m -> or_die (Error m)
    in
    if not (Serve.Protocol.valid_id rid) then
      or_die
        (Error
           (Printf.sprintf "--id %S: use 1-64 chars from [A-Za-z0-9_-]" rid));
    let on_event line = if not quiet then Format.eprintf "%s@." line in
    match
      Serve.Client.submit ~on_event endpoint ~rid
        ?deadline_s:(if deadline > 0.0 then Some deadline else None)
        ~spec ()
    with
    | Error e -> or_die (Error e)
    | Ok (Serve.Client.Manifest { manifest; failed }) ->
      (match out with
       | "-" -> print_string manifest
       | path ->
         let oc = open_out path in
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () -> output_string oc manifest));
      if failed then exit 1
    | Ok (Serve.Client.Rejected reason) ->
      Format.eprintf "submit: rejected: %s@." reason;
      exit 3
    | Ok Serve.Client.Deadline ->
      Format.eprintf
        "submit: deadline expired; resubmit the same id to resume@.";
      exit 4
    | Ok (Serve.Client.Remote_error m) ->
      Format.eprintf "submit: %s@." m;
      exit 2
  in
  let jobfile_term =
    let doc = "The batch job file to submit." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JOBFILE" ~doc)
  in
  let id_term =
    let doc =
      "Request id (spool file name on the daemon).  Resubmitting the \
       same id resumes or replays instead of recomputing."
    in
    Arg.(required & opt (some string) None & info [ "id" ] ~docv:"ID" ~doc)
  in
  let deadline_term =
    let doc =
      "Per-request deadline in seconds; the daemon stops the batch at \
       the next job boundary once it expires."
    in
    Arg.(value & opt float 0.0 & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let out_term =
    let doc = "Where to write the manifest ($(b,-) = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let quiet_term =
    let doc = "Suppress the event stream on stderr." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a batch job file to a running $(b,mtsize serve) daemon \
          and stream its events; exit 0 with the manifest on stdout (or \
          $(b,-o) FILE), 1 if any job failed, 2 on a request error, 3 \
          if rejected (queue full), 4 on deadline expiry.")
    Term.(const run $ jobfile_term $ socket_term $ port_term $ id_term
          $ deadline_term $ out_term $ quiet_term)

let trace_check_cmd =
  let run file =
    match Obs.Trace.validate_file file with
    | Ok chk ->
      Format.printf "%s: OK — %d event(s) on %d thread(s)@." file
        chk.Obs.Trace.events_checked chk.Obs.Trace.tids;
      List.iter
        (fun (what, spans, counter) ->
          Format.printf "  %-28s spans %-6d counter %d@." what spans counter)
        chk.Obs.Trace.reconciled
    | Error msgs ->
      List.iter (fun m -> Format.eprintf "%s: %s@." file m) msgs;
      exit 1
  in
  let file_term =
    let doc = "Chrome trace file written by $(b,--trace)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a --trace file: well-formed trace_event JSON, proper \
          span nesting per thread, and span totals reconciling (±1) \
          with the embedded registry counters.  Exit 1 on any failure.")
    Term.(const run $ file_term)

let bench_history_cmd =
  (* Read the BENCH_<experiment>.json files `bench ... record[=DIR]`
     appends to, and show the performance trajectory per gated
     measurement: every recorded ratio against the first (baseline)
     entry, flagging >20% degradations the way the bench regression
     gate does. *)
  let find_sub line pat =
    let n = String.length line and m = String.length pat in
    let rec go i =
      if i + m > n then None
      else if String.sub line i m = pat then Some i
      else go (i + 1)
    in
    go 0
  in
  let field_str line key =
    let pat = Printf.sprintf "\"%s\":\"" key in
    match find_sub line pat with
    | None -> None
    | Some i ->
      let start = i + String.length pat in
      (match String.index_from_opt line start '"' with
       | Some stop -> Some (String.sub line start (stop - start))
       | None -> None)
  in
  let field_num line key =
    let pat = Printf.sprintf "\"%s\":" key in
    match find_sub line pat with
    | None -> None
    | Some i ->
      let start = i + String.length pat in
      let stop = ref start in
      let n = String.length line in
      while
        !stop < n
        && (match line.[!stop] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))
  in
  let run dir =
    let entries = try Sys.readdir dir with Sys_error _ -> [||] in
    Array.sort compare entries;
    let shown = ref 0 in
    Array.iter
      (fun name ->
        if
          String.starts_with ~prefix:"BENCH_" name
          && Filename.check_suffix name ".json"
        then begin
          incr shown;
          let exp =
            Filename.chop_suffix
              (String.sub name 6 (String.length name - 6))
              ".json"
          in
          Format.printf "== %s (%s) ==@." exp name;
          let lines =
            try
              String.split_on_char '\n'
                (In_channel.with_open_bin (Filename.concat dir name)
                   In_channel.input_all)
              |> List.filter (fun l -> String.trim l <> "")
            with Sys_error m ->
              Format.printf "  unreadable: %s@." m;
              []
          in
          (* baseline = first recorded ratio per measurement *)
          let baselines = Hashtbl.create 8 in
          List.iter
            (fun line ->
              let sub = Option.value ~default:"-" (field_str line "sub") in
              match field_num line "ratio" with
              | None -> Format.printf "  (unparseable entry)@."
              | Some ratio ->
                if not (Hashtbl.mem baselines sub) then
                  Hashtbl.replace baselines sub ratio;
                let base = Hashtbl.find baselines sub in
                let delta =
                  if base > 0.0 then 100.0 *. ((ratio /. base) -. 1.0)
                  else 0.0
                in
                let at =
                  match field_num line "at" with
                  | Some v -> Printf.sprintf "%.0f" v
                  | None -> "-"
                in
                let flag = if ratio < 0.8 *. base then "  << REGRESSION" else "" in
                Format.printf
                  "  %-24s at %-12s ratio %8.3f  (baseline %.3f, %+.1f%%)%s@."
                  sub at ratio base delta flag)
            lines
        end)
      entries;
    if !shown = 0 then
      Format.printf
        "no BENCH_*.json files in %s (record some with: bench <exp> \
         record)@."
        dir
  in
  let dir_term =
    let doc = "Directory holding the recorded BENCH_*.json files." in
    Arg.(value & pos 0 string "." & info [] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "bench-history"
       ~doc:
         "Show the recorded bench measurement history (written by \
          $(b,bench <experiment> record)): every entry's gated ratio \
          against its stored baseline, flagging >20% degradations.")
    Term.(const run $ dir_term)

let () =
  let info =
    Cmd.info "mtsize" ~version:"1.0.0"
      ~doc:"MTCMOS sleep-transistor sizing tool (DAC 1997 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ sweep_cmd; size_cmd; worst_cmd; simulate_cmd; compare_cmd;
            estimate_cmd; sta_cmd; select_cmd; energy_cmd; wakeup_cmd;
            deck_cmd; lint_cmd; search_cmd; workload_cmd; dot_cmd;
            trace_check_cmd; scale_cmd; run_cmd; serve_cmd; submit_cmd;
            bench_history_cmd ]))
