(* Quickstart: size a sleep transistor for a small MTCMOS block.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. pick a technology card (the paper's 0.7 um MTCMOS process) *)
  let tech = Device.Tech.mtcmos_07um in

  (* 2. describe the logic block: a 3-bit mirror ripple-carry adder *)
  let adder = Circuits.Ripple_adder.make tech ~bits:3 in
  let circuit = adder.Circuits.Ripple_adder.circuit in
  Format.printf "%a@." Netlist.Circuit.pp_stats circuit;

  (* 3. pick the input transition to analyse: 1+5 -> 6+5 *)
  let vectors = [ ([ (3, 1); (3, 5) ], [ (3, 6); (3, 5) ]) ] in

  (* 4. sweep the sleep-transistor size with the variable-breakpoint
        switch-level simulator *)
  print_endline "sleep-transistor sweep (switch-level simulator):";
  Mtcmos.Sizing.sweep circuit ~vectors ~wls:[ 2.0; 5.0; 10.0; 20.0; 50.0 ]
  |> List.iter (fun m -> Format.printf "  %a@." Mtcmos.Sizing.pp_measurement m);

  (* 5. size for a 5 % worst-case speed penalty *)
  let wl =
    Mtcmos.Sizing.size_for_degradation circuit ~vectors ~target:0.05
  in
  Format.printf "W/L for a 5%% delay budget: %.1f@." wl;

  (* 6. compare with the naive baselines the paper warns about *)
  Format.printf "sum-of-widths estimate:    %.1f@."
    (Mtcmos.Estimators.sum_of_widths circuit);
  let before, after = List.hd vectors in
  let i_peak =
    Mtcmos.Estimators.peak_current_of_transition circuit ~before ~after
  in
  let v_budget = Mtcmos.Estimators.v_budget_for_degradation tech ~target:0.05 in
  Format.printf "peak-current estimate:     %.1f  (peak %s held to %s)@."
    (Mtcmos.Estimators.peak_current_wl tech ~i_peak ~v_budget)
    (Phys.Units.to_eng_string ~unit:"A" i_peak)
    (Phys.Units.to_eng_string ~unit:"V" v_budget);

  (* 7. verify the chosen size against the transistor-level engine *)
  let m =
    Mtcmos.Sizing.delay_at
      ~ctx:Eval.Ctx.(default |> with_engine Eval.Spice_level)
      circuit ~vectors ~wl
  in
  Format.printf "transistor-level check:    %a@." Mtcmos.Sizing.pp_measurement
    m
